#include "src/scaler/diagonal.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/telemetry/wait_class.h"

namespace dbscale::scaler {

using container::ContainerSpec;
using container::GridLevels;
using container::ResourceKind;
using container::ResourceVector;

// ---------------------------------------------------------------------------
// DiagonalOptions
// ---------------------------------------------------------------------------

Status DiagonalOptions::Validate() const {
  DBSCALE_RETURN_IF_ERROR(thresholds.Validate());
  if (target_utilization_pct <= 0.0 || target_utilization_pct > 100.0) {
    return Status::InvalidArgument(
        "target_utilization_pct must be in (0, 100]");
  }
  if (down_latency_slack_ratio >= 1.0) {
    return Status::InvalidArgument(
        "down_latency_slack_ratio must be < 1 (<= 0 disables)");
  }
  if (down_patience_high < 1 || down_patience_medium < 1 ||
      down_patience_low < 1) {
    return Status::InvalidArgument("down patience values must be >= 1");
  }
  if (up_patience_low_sensitivity < 1) {
    return Status::InvalidArgument(
        "up_patience_low_sensitivity must be >= 1");
  }
  if (up_cooldown_intervals < 0) {
    return Status::InvalidArgument("up_cooldown_intervals must be >= 0");
  }
  if (down_projected_util_guard_pct <= 0.0 ||
      down_projected_util_guard_pct > 100.0) {
    return Status::InvalidArgument(
        "down_projected_util_guard_pct must be in (0, 100]");
  }
  if (wait_directed_up_min_pct > 100.0) {
    return Status::InvalidArgument(
        "wait_directed_up_min_pct must be <= 100 (<= 0 disables)");
  }
  if (down_latency_gate_ratio >= 1.0) {
    return Status::InvalidArgument(
        "down_latency_gate_ratio must be < 1 (<= 0 disables)");
  }
  if (down_max_levels_per_move < 1) {
    return Status::InvalidArgument("down_max_levels_per_move must be >= 1");
  }
  if (down_breach_window_intervals < 0) {
    return Status::InvalidArgument(
        "down_breach_window_intervals must be >= 0");
  }
  if (budget_conservative_k < 1) {
    return Status::InvalidArgument("budget_conservative_k must be >= 1");
  }
  if (resize_max_attempts < 1) {
    return Status::InvalidArgument("resize_max_attempts must be >= 1");
  }
  if (resize_backoff_base_intervals < 1 || resize_backoff_multiplier < 1.0 ||
      resize_backoff_max_intervals < resize_backoff_base_intervals) {
    return Status::InvalidArgument("invalid resize backoff options");
  }
  if (resize_rejection_cooldown_intervals < 0) {
    return Status::InvalidArgument(
        "resize_rejection_cooldown_intervals must be >= 0");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DiagonalOptimizer
// ---------------------------------------------------------------------------

DiagonalOptimizer::DiagonalOptimizer(const container::Catalog& catalog)
    : catalog_(catalog), flexible_(catalog.flexible()) {
  for (ResourceKind kind : container::kAllResources) {
    const size_t d = static_cast<size_t>(kind);
    const int n = catalog.GridSize(kind);
    DBSCALE_CHECK(n >= 1 && n <= container::kMaxGridLevels);
    grid_size_[d] = n;
    for (int l = 0; l < n; ++l) {
      grid_value_[d][l] = catalog.GridValue(kind, l);
      dim_price_[d][l] = catalog.DimensionPrice(kind, l);
    }
  }
  min_rest_[container::kNumResources] = 0.0;
  for (int d = container::kNumResources - 1; d >= 0; --d) {
    min_rest_[d] = min_rest_[d + 1] + dim_price_[d][0];
  }
  if (catalog.num_rungs() > 1) {
    levels_per_rung_ =
        std::max(1, (grid_size_[0] - 1) / (catalog.num_rungs() - 1));
  }
  if (!flexible_) {
    const std::vector<ContainerSpec>& specs = catalog.specs();
    spec_price_.reserve(specs.size());
    spec_res_.reserve(specs.size());
    spec_cover_.reserve(specs.size());
    for (const ContainerSpec& spec : specs) {
      spec_price_.push_back(spec.price_per_interval);
      spec_res_.push_back(spec.resources);
      GridLevels cover{};
      for (ResourceKind kind : container::kAllResources) {
        cover[static_cast<size_t>(kind)] =
            LevelWithin(kind, spec.resources.Get(kind));
      }
      spec_cover_.push_back(cover);
    }
  }
}

// dbscale-hot
int DiagonalOptimizer::LevelFor(ResourceKind kind, double demand) const {
  const size_t d = static_cast<size_t>(kind);
  const int n = grid_size_[d];
  for (int l = 0; l < n; ++l) {
    if (grid_value_[d][l] >= demand) return l;
  }
  return n - 1;
}

// dbscale-hot
int DiagonalOptimizer::LevelWithin(ResourceKind kind, double value) const {
  const size_t d = static_cast<size_t>(kind);
  for (int l = grid_size_[d] - 1; l >= 0; --l) {
    if (grid_value_[d][l] <= value) return l;
  }
  return 0;
}

double DiagonalOptimizer::ValueAt(ResourceKind kind, int level) const {
  const size_t d = static_cast<size_t>(kind);
  DBSCALE_CHECK(level >= 0 && level < grid_size_[d]);
  return grid_value_[d][level];
}

// dbscale-hot
DiagonalOptimizer::Target DiagonalOptimizer::Solve(
    const ResourceVector& demand, double budget) const {
  GridLevels need{};
  for (ResourceKind kind : container::kAllResources) {
    need[static_cast<size_t>(kind)] = LevelFor(kind, demand.Get(kind));
  }
  return flexible_ ? SolveFlexible(need, budget) : SolveFixed(need, budget);
}

// dbscale-hot
DiagonalOptimizer::Target DiagonalOptimizer::SolveFlexible(
    const GridLevels& need, double budget) const {
  Target t;
  // Covering bundle: because every per-dimension price component is
  // nondecreasing in level and a dominating bundle needs level >= need[d]
  // in every dimension, the bundle AT need is the cheapest dominating one.
  double cover_price = 0.0;
  for (int d = 0; d < container::kNumResources; ++d) {
    cover_price += dim_price_[d][need[d]];
  }
  if (cover_price <= budget) {
    t.levels = need;
    t.price = cover_price;
    t.feasible = true;
    return t;
  }

  // Budget binds: exact search over levels <= need for the bundle
  // minimizing (total shortfall steps, then price). Iterating each
  // dimension downward from need makes the running shortfall monotone, so
  // a partial shortfall above the best is a subtree-wide prune (break);
  // price lower bounds use the cheapest completion of the remaining
  // dimensions (min_rest_).
  int best_short = std::numeric_limits<int>::max();
  double best_price = std::numeric_limits<double>::infinity();
  GridLevels best_levels{};
  bool found = false;
  for (int l0 = need[0]; l0 >= 0; --l0) {
    const int s0 = need[0] - l0;
    if (s0 > best_short) break;
    const double q0 = dim_price_[0][l0];
    if (q0 + min_rest_[1] > budget) continue;
    if (s0 == best_short && q0 + min_rest_[1] >= best_price) continue;
    for (int l1 = need[1]; l1 >= 0; --l1) {
      const int s1 = s0 + (need[1] - l1);
      if (s1 > best_short) break;
      const double q1 = q0 + dim_price_[1][l1];
      if (q1 + min_rest_[2] > budget) continue;
      if (s1 == best_short && q1 + min_rest_[2] >= best_price) continue;
      for (int l2 = need[2]; l2 >= 0; --l2) {
        const int s2 = s1 + (need[2] - l2);
        if (s2 > best_short) break;
        const double q2 = q1 + dim_price_[2][l2];
        if (q2 + min_rest_[3] > budget) continue;
        if (s2 == best_short && q2 + min_rest_[3] >= best_price) continue;
        for (int l3 = need[3]; l3 >= 0; --l3) {
          const int s3 = s2 + (need[3] - l3);
          if (s3 > best_short) break;
          const double q3 = q2 + dim_price_[3][l3];
          if (q3 > budget) continue;
          if (s3 < best_short || (s3 == best_short && q3 < best_price)) {
            best_short = s3;
            best_price = q3;
            best_levels = {l0, l1, l2, l3};
            found = true;
          }
        }
      }
    }
  }
  if (!found) return t;  // not even the cheapest bundle fits the budget
  t.levels = best_levels;
  t.price = best_price;
  t.shortfall_steps = best_short;
  t.budget_limited = true;
  t.feasible = true;
  int worst = -1;
  for (ResourceKind kind : container::kAllResources) {
    const size_t d = static_cast<size_t>(kind);
    const int sd = need[d] - best_levels[d];
    if (sd > worst) {
      worst = sd;
      t.binding_dimension = kind;
    }
  }
  return t;
}

// dbscale-hot
DiagonalOptimizer::Target DiagonalOptimizer::SolveFixed(
    const GridLevels& need, double budget) const {
  Target t;
  const int n = static_cast<int>(spec_price_.size());
  // Fixed grids expose exactly the listed specs' per-dimension values, so
  // "spec dominates the demand" is "spec covers need in every dimension" —
  // the ascending-price scan reproduces Catalog::CheapestDominating.
  for (int i = 0; i < n; ++i) {
    if (spec_price_[i] > budget) break;  // specs are price-sorted
    const GridLevels& cover = spec_cover_[i];
    bool dominates = true;
    for (int d = 0; d < container::kNumResources; ++d) {
      if (cover[d] < need[d]) {
        dominates = false;
        break;
      }
    }
    if (dominates) {
      t.levels = cover;
      t.spec_index = i;
      t.price = spec_price_[i];
      t.feasible = true;
      return t;
    }
  }
  // Budget binds (or demand exceeds every listed spec): among affordable
  // specs minimize (total shortfall steps, then price). Ascending price
  // order makes the first spec at a given shortfall the cheapest.
  int best_short = std::numeric_limits<int>::max();
  int best_index = -1;
  for (int i = 0; i < n; ++i) {
    if (spec_price_[i] > budget) break;
    const GridLevels& cover = spec_cover_[i];
    int short_steps = 0;
    for (int d = 0; d < container::kNumResources; ++d) {
      short_steps += std::max(0, need[d] - cover[d]);
    }
    if (short_steps < best_short) {
      best_short = short_steps;
      best_index = i;
    }
  }
  if (best_index < 0) return t;
  t.levels = spec_cover_[best_index];
  t.spec_index = best_index;
  t.price = spec_price_[best_index];
  t.shortfall_steps = best_short;
  t.budget_limited = best_short > 0;
  t.feasible = true;
  int worst = -1;
  for (ResourceKind kind : container::kAllResources) {
    const size_t d = static_cast<size_t>(kind);
    const int sd = std::max(0, need[d] - t.levels[d]);
    if (sd > worst) {
      worst = sd;
      t.binding_dimension = kind;
    }
  }
  return t;
}

ContainerSpec DiagonalOptimizer::Materialize(const Target& target) const {
  DBSCALE_CHECK(target.feasible);
  if (target.spec_index >= 0) {
    return catalog_.specs()[static_cast<size_t>(target.spec_index)];
  }
  return catalog_.BundleAt(target.levels);
}

// ---------------------------------------------------------------------------
// DiagonalScaler
// ---------------------------------------------------------------------------

namespace {

struct DominantWait {
  telemetry::WaitClass wait_class = telemetry::WaitClass::kSystem;
  double pct = -1.0;
};

DominantWait FindDominantWait(const telemetry::SignalSnapshot& signals) {
  DominantWait dominant;
  for (telemetry::WaitClass wc : telemetry::kAllWaitClasses) {
    const double pct = signals.wait_pct_by_class[static_cast<size_t>(wc)];
    if (pct > dominant.pct) {
      dominant.pct = pct;
      dominant.wait_class = wc;
    }
  }
  return dominant;
}

std::string DominantWaitNote(const telemetry::SignalSnapshot& signals) {
  const DominantWait dominant = FindDominantWait(signals);
  if (dominant.pct <= 0.0) return "no waits observed";
  return StrFormat("dominant waits: %s %.0f%%",
                   telemetry::WaitClassToString(dominant.wait_class),
                   dominant.pct);
}

}  // namespace

Result<std::unique_ptr<DiagonalScaler>> DiagonalScaler::Create(
    const container::Catalog& catalog, const TenantKnobs& knobs,
    const DiagonalOptions& options) {
  DBSCALE_RETURN_IF_ERROR(knobs.Validate());
  DBSCALE_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<BudgetManager> budget;
  if (knobs.budget.has_value()) {
    BudgetManagerOptions bm;
    bm.total_budget = knobs.budget->total_budget;
    bm.num_intervals = knobs.budget->num_intervals;
    bm.min_cost = catalog.smallest().price_per_interval;
    bm.max_cost = catalog.largest().price_per_interval;
    bm.strategy = options.budget_strategy;
    bm.conservative_k = options.budget_conservative_k;
    DBSCALE_ASSIGN_OR_RETURN(BudgetManager manager,
                             BudgetManager::Create(bm));
    budget = std::make_unique<BudgetManager>(std::move(manager));
  }
  return std::unique_ptr<DiagonalScaler>(
      new DiagonalScaler(catalog, knobs, options, std::move(budget)));
}

// Validation happens in Create(); this constructor is private and only
// reachable through it.
// dbscale-lint: allow(options-validate)
DiagonalScaler::DiagonalScaler(const container::Catalog& catalog,
                               const TenantKnobs& knobs,
                               const DiagonalOptions& options,
                               std::unique_ptr<BudgetManager> budget)
    : catalog_(catalog),
      knobs_(knobs),
      options_(options),
      estimator_(options.estimator),
      budget_(std::move(budget)),
      optimizer_(catalog) {}

int DiagonalScaler::DownPatience() const {
  switch (knobs_.sensitivity) {
    case Sensitivity::kHigh:
      return options_.down_patience_high;
    case Sensitivity::kMedium:
      return options_.down_patience_medium;
    case Sensitivity::kLow:
      return options_.down_patience_low;
  }
  return options_.down_patience_medium;
}

double DiagonalScaler::AvailableBudget() const {
  return budget_ ? budget_->available()
                 : std::numeric_limits<double>::infinity();
}

ScalingDecision DiagonalScaler::HoldCurrent(const PolicyInput& input,
                                            Explanation explanation) const {
  ScalingDecision d;
  d.target = input.current;
  d.explanation = std::move(explanation);
  return d;
}

ResourceVector DiagonalScaler::UsageVector(const PolicyInput& input) const {
  if (input.usage.AnyPositive()) return input.usage;
  ResourceVector usage;
  for (ResourceKind kind : container::kAllResources) {
    usage.Set(kind, input.signals.resource(kind).utilization_pct / 100.0 *
                        input.current.resources.Get(kind));
  }
  return usage;
}

int DiagonalScaler::BackoffIntervals(int failed_attempts) const {
  double intervals =
      static_cast<double>(options_.resize_backoff_base_intervals);
  for (int i = 1; i < failed_attempts; ++i) {
    intervals *= options_.resize_backoff_multiplier;
  }
  intervals = std::min(
      intervals, static_cast<double>(options_.resize_backoff_max_intervals));
  return std::max(1, static_cast<int>(intervals));
}

std::optional<ScalingDecision> DiagonalScaler::HandleActuationFeedback(
    const PolicyInput& input) {
  const ActuationFeedback& fb = input.actuation;
  const bool migration = fb.kind == ActuationKind::kMigration;
  switch (fb.phase) {
    case ActuationPhase::kNone:
      break;
    case ActuationPhase::kApplied:
      retry_.reset();
      audit_.NoteResizeOutcome(ResizeOutcome::kApplied, fb.attempt);
      break;
    case ActuationPhase::kPending:
      if (migration) {
        return HoldCurrent(
            input, Explanation(ExplanationCode::kHoldMigrationPending,
                               static_cast<double>(fb.attempt),
                               static_cast<double>(fb.downtime_intervals)));
      }
      return HoldCurrent(input,
                         Explanation(ExplanationCode::kHoldResizePending,
                                     static_cast<double>(fb.attempt)));
    case ActuationPhase::kRejected: {
      retry_.reset();
      audit_.NoteResizeOutcome(ResizeOutcome::kRejected, fb.attempt);
      rejected_target_id_ = fb.target.id;
      rejected_until_interval_ =
          input.interval_index + options_.resize_rejection_cooldown_intervals;
      Explanation e(migration ? ExplanationCode::kHoldHostSaturated
                              : ExplanationCode::kHoldResizeRejected,
                    fb.target.name);
      e.args[0] =
          static_cast<double>(options_.resize_rejection_cooldown_intervals);
      return HoldCurrent(input, std::move(e));
    }
    case ActuationPhase::kFailed: {
      if (fb.attempt >= options_.resize_max_attempts) {
        retry_.reset();
        audit_.NoteResizeOutcome(ResizeOutcome::kAbandoned, fb.attempt);
        return HoldCurrent(
            input, Explanation(ExplanationCode::kHoldResizeAbandoned,
                               static_cast<double>(fb.attempt)));
      }
      audit_.NoteResizeOutcome(ResizeOutcome::kFailed, fb.attempt);
      const int backoff = BackoffIntervals(fb.attempt);
      retry_ =
          RetryPlan{fb.target, fb.attempt, input.interval_index + backoff};
      return HoldCurrent(input,
                         Explanation(ExplanationCode::kHoldResizeBackoff,
                                     static_cast<double>(fb.attempt),
                                     static_cast<double>(backoff)));
    }
  }

  if (retry_.has_value()) {
    if (input.interval_index < retry_->retry_at_interval) {
      return HoldCurrent(
          input,
          Explanation(ExplanationCode::kHoldResizeBackoff,
                      static_cast<double>(retry_->failed_attempts),
                      static_cast<double>(retry_->retry_at_interval -
                                          input.interval_index)));
    }
    const RetryPlan plan = *retry_;
    retry_.reset();
    const int attempt = plan.failed_attempts + 1;
    const obs::Sink& sink = input.obs;
    const obs::SpanId retry_span = sink.trace.Start("decide.retry", input.now);
    sink.trace.Attr(retry_span, "attempt", attempt);
    sink.trace.Attr(retry_span, "target_rung", plan.target.base_rung);
    sink.trace.End(retry_span, input.now);
    if (sink.pipeline != nullptr) {
      sink.metrics.Add(sink.pipeline->resize_retries_total, 1.0);
    }
    decision_attempt_ = attempt;
    ScalingDecision d;
    d.target = plan.target;
    d.explanation =
        Explanation(ExplanationCode::kScaleRetryResize, plan.target.name);
    d.explanation.args[0] = static_cast<double>(attempt);
    return d;
  }
  return std::nullopt;
}

ScalingDecision DiagonalScaler::Decide(const PolicyInput& input) {
  if (budget_ && input.charged_cost > 0.0) {
    const Status status = budget_->ChargeAndRefill(input.charged_cost);
    if (!status.ok()) {
      DBSCALE_LOG(kError) << "budget charge failed: " << status.ToString();
    }
  }

  decision_attempt_ = 1;
  const obs::Sink& sink = input.obs;
  const obs::SpanId diag_span = sink.trace.Start("decide.diagonal", input.now);
  ScalingDecision d = DecideUnclamped(input);
  d.demand = last_estimate_demand_;
  sink.trace.AttrStr(diag_span, "code",
                     ExplanationCodeToken(d.explanation.code));
  sink.trace.AttrStr(diag_span, "backend", catalog_.backend().backend_name());
  sink.trace.Attr(diag_span, "price", d.target.price_per_interval);
  sink.trace.End(diag_span, input.now);

  const obs::SpanId budget_span = sink.trace.Start("budget_check", input.now);
  const double budget = AvailableBudget();
  bool clamped = false;
  if (d.target.price_per_interval > budget) {
    // The budget is a hard constraint: even "hold" must fit the interval's
    // tokens. Re-solve for the current resources under the remaining budget
    // — on a flexible catalog this sheds exactly the binding dimensions
    // instead of dropping a whole rung.
    const DiagonalOptimizer::Target forced_target =
        optimizer_.Solve(d.target.resources, budget);
    if (forced_target.feasible) {
      d.target = optimizer_.Materialize(forced_target);
      Explanation forced(ExplanationCode::kScaleDownForcedByBudget, budget);
      forced.detail = d.explanation.ToString();
      d.explanation = std::move(forced);
      low_streak_ = 0;
      clamped = true;
    }
    // No affordable bundle at all would mean Create() admitted an
    // infeasible budget; keep the current container in that case.
  }
  if (budget_) sink.trace.Attr(budget_span, "available", budget);
  sink.trace.Attr(budget_span, "price", d.target.price_per_interval);
  sink.trace.Attr(budget_span, "clamped", clamped ? 1.0 : 0.0);
  sink.trace.End(budget_span, input.now);
  if (sink.pipeline != nullptr && budget_ != nullptr) {
    sink.metrics.Set(sink.pipeline->budget_available, budget_->available());
    sink.metrics.Set(sink.pipeline->budget_spent, budget_->spent());
    if (clamped) sink.metrics.Add(sink.pipeline->budget_clamps_total, 1.0);
  }

  if (input.placement.present && d.target.id != input.current.id &&
      d.target.price_per_interval > input.current.price_per_interval) {
    bool fits_locally = true;
    for (const auto kind : container::kAllResources) {
      const double delta = d.target.resources.Get(kind) -
                           input.current.resources.Get(kind);
      if (delta > input.placement.free.Get(kind)) {
        fits_locally = false;
        break;
      }
    }
    if (!fits_locally) {
      Explanation e(ExplanationCode::kScaleTriggersMigration, d.target.name);
      e.args[0] = static_cast<double>(d.target.base_rung);
      d.explanation = std::move(e);
    }
  }

  // Remember any move that lowered a dimension (rule shed, slack shed,
  // rebalance, budget clamp): if latency breaks inside the breach window,
  // DecideUnclamped floors the shed dimensions at their pre-move levels.
  if (d.target.id != input.current.id) {
    container::GridLevels from{};
    container::GridLevels to{};
    bool any_down = false;
    for (ResourceKind kind : container::kAllResources) {
      const size_t dd = static_cast<size_t>(kind);
      from[dd] = optimizer_.LevelWithin(kind, input.current.resources.Get(kind));
      to[dd] = optimizer_.LevelWithin(kind, d.target.resources.Get(kind));
      if (to[dd] < from[dd]) any_down = true;
    }
    if (any_down) {
      last_down_interval_ = input.interval_index;
      last_down_from_ = from;
      last_down_to_ = to;
    }
  }

  audit_.Record(input, last_cats_, last_estimate_, d, decision_attempt_);
  return d;
}

ScalingDecision DiagonalScaler::DecideUnclamped(const PolicyInput& input) {
  const telemetry::SignalSnapshot& signals = input.signals;
  const obs::Sink& sink = input.obs;
  last_estimate_demand_ = ResourceVector{};

  if (std::optional<ScalingDecision> d = HandleActuationFeedback(input)) {
    low_streak_ = 0;
    return *std::move(d);
  }
  if (!signals.valid) {
    return HoldCurrent(input, Explanation(ExplanationCode::kHoldWarmup));
  }
  if (signals.degraded) {
    low_streak_ = 0;
    bad_streak_ = 0;
    return HoldCurrent(
        input, Explanation(ExplanationCode::kHoldDegradedTelemetry,
                           100.0 * signals.confidence));
  }

  const obs::SpanId cat_span = sink.trace.Start("categorize", input.now);
  last_cats_ = Categorize(signals, options_.thresholds, knobs_.latency_goal,
                          options_.categorize);
  last_estimate_ = estimator_.Estimate(last_cats_);
  sink.trace.AttrStr(cat_span, "latency",
                     LatencyCategoryToString(last_cats_.latency));
  sink.trace.End(cat_span, input.now);
  const CategorizedSignals& cats = last_cats_;
  const DemandEstimate& est = last_estimate_;

  // The per-resource demand vector: the allocation at which current usage
  // would sit at the target utilization. This is what the optimizer covers;
  // the Section 4 rule steps steer how far past it an up-move reaches.
  const ResourceVector usage = UsageVector(input);
  ResourceVector demand;
  for (ResourceKind kind : container::kAllResources) {
    demand.Set(kind,
               usage.Get(kind) / (options_.target_utilization_pct / 100.0));
  }
  last_estimate_demand_ = demand;

  GridLevels cur{};
  GridLevels util_level{};
  for (ResourceKind kind : container::kAllResources) {
    const size_t d = static_cast<size_t>(kind);
    cur[d] = optimizer_.LevelWithin(kind, input.current.resources.Get(kind));
    util_level[d] = optimizer_.LevelFor(kind, demand.Get(kind));
  }
  const int step = optimizer_.levels_per_rung();

  const bool has_goal = knobs_.latency_goal.has_value();
  const bool latency_bad = has_goal && cats.latency == LatencyCategory::kBad;
  const bool degrading = has_goal && cats.latency_degrading;
  bad_streak_ = latency_bad ? bad_streak_ + 1 : 0;

  // Floor learning: a breach right after a down move indicts the shed
  // dimensions. Floor them at their pre-shed levels for the TTL — the
  // probe is not repeated the next time latency dips under the gate —
  // and revert immediately rather than recovering one corrective level
  // at a time (every extra interval of recovery is a missed goal).
  if (latency_bad && options_.down_floor_ttl_intervals > 0 &&
      input.interval_index - last_down_interval_ <=
          options_.down_breach_window_intervals) {
    GridLevels revert = cur;
    bool grew = false;
    for (int d = 0; d < container::kNumResources; ++d) {
      if (last_down_to_[d] < last_down_from_[d]) {
        down_floor_[d] = std::max(down_floor_[d], last_down_from_[d]);
        down_floor_until_[d] =
            input.interval_index + options_.down_floor_ttl_intervals;
        const int top =
            optimizer_.grid_size(static_cast<ResourceKind>(d)) - 1;
        revert[d] = std::max(revert[d], std::min(top, last_down_from_[d]));
        if (revert[d] > cur[d]) grew = true;
      }
    }
    last_down_interval_ = -1000;
    if (grew) {
      ResourceVector want;
      for (ResourceKind kind : container::kAllResources) {
        want.Set(kind,
                 optimizer_.ValueAt(kind, revert[static_cast<size_t>(kind)]));
      }
      const DiagonalOptimizer::Target solved =
          optimizer_.Solve(want, AvailableBudget());
      if (solved.feasible) {
        ScalingDecision d;
        d.target = optimizer_.Materialize(solved);
        if (d.target.id != input.current.id &&
            !(d.target.id == rejected_target_id_ &&
              input.interval_index < rejected_until_interval_)) {
          low_streak_ = 0;
          last_up_interval_ = input.interval_index;
          d.explanation = Explanation(ExplanationCode::kScaleDiagonalUp,
                                      "revert: latency broke after shed");
          d.explanation.args[0] = d.target.price_per_interval;
          d.explanation.args[1] = input.current.price_per_interval;
          return d;
        }
      }
    }
  }
  // Expired floors drop back to zero.
  for (int d = 0; d < container::kNumResources; ++d) {
    if (input.interval_index >= down_floor_until_[d]) down_floor_[d] = 0;
  }

  // -------- Scale-up / rebalance path --------
  bool perf_trigger = false;
  if (!has_goal) {
    perf_trigger = true;
  } else if (knobs_.sensitivity == Sensitivity::kLow) {
    perf_trigger =
        latency_bad && bad_streak_ >= options_.up_patience_low_sensitivity;
  } else {
    perf_trigger = latency_bad || degrading;
  }

  // Wait-directed correction: per-dimension sheds can manufacture a state
  // the Section 4 rules never see on the rung ladder — latency bad, waits
  // piled on one resource, yet that resource's utilization low because the
  // queue ahead of it throttles throughput. When no rule fires, grow the
  // dimension behind the dominant wait class by one grid level.
  const DominantWait dominant = FindDominantWait(signals);
  std::optional<ResourceKind> wait_dim =
      telemetry::WaitClassResource(dominant.wait_class);
  const bool wait_directed =
      perf_trigger && !est.AnyIncrease() && wait_dim.has_value() &&
      options_.wait_directed_up_min_pct > 0.0 &&
      dominant.pct >= options_.wait_directed_up_min_pct &&
      cur[static_cast<size_t>(*wait_dim)] <
          optimizer_.grid_size(*wait_dim) - 1;
  const bool wants_up = perf_trigger && (est.AnyIncrease() || wait_directed);

  const bool in_up_cooldown =
      input.interval_index - last_up_interval_ <
      options_.up_cooldown_intervals;
  if (wants_up && in_up_cooldown) {
    low_streak_ = 0;
    return HoldCurrent(input, Explanation(ExplanationCode::kHoldUpCooldown));
  }

  if (wants_up) {
    low_streak_ = 0;
    GridLevels need = cur;
    for (ResourceKind kind : container::kAllResources) {
      const size_t d = static_cast<size_t>(kind);
      const int top = optimizer_.grid_size(kind) - 1;
      const int steps = est.For(kind).steps;
      if (wait_directed && kind == *wait_dim) {
        // One corrective level (or up to the utilization-implied demand):
        // small because it is inference from waits, not a rule hit, and
        // the next interval re-evaluates.
        need[d] = std::min(top, std::max(cur[d] + 1, util_level[d]));
      } else if (steps > 0) {
        // Grow: the rule's rung steps, or further if the utilization-implied
        // demand already sits above that.
        need[d] = std::min(top, std::max(cur[d] + steps * step, util_level[d]));
      } else if (steps == 0) {
        // A dimension without a rule hit still rises to its utilization-
        // implied level while latency is bad: bursts push several
        // dimensions at once and the rules rarely flag them all in the
        // same interval.
        need[d] = std::min(top, std::max(cur[d], util_level[d]));
      } else if (steps < 0 && util_level[d] < cur[d]) {
        // Rebalance: a dimension with an explicit low-demand rule hit may
        // shed while others grow — guarded by projected utilization.
        int cand = std::max(util_level[d], cur[d] + steps * step);
        cand = std::max(cand, std::min(cur[d], down_floor_[d]));
        cand = std::max(0, cand);
        while (cand < cur[d]) {
          const double alloc = optimizer_.ValueAt(kind, cand);
          if (alloc <= 0.0 || 100.0 * usage.Get(kind) / alloc <=
                                  options_.down_projected_util_guard_pct) {
            break;
          }
          ++cand;
        }
        need[d] = cand;
      }
    }

    ResourceVector want;
    for (ResourceKind kind : container::kAllResources) {
      want.Set(kind,
               optimizer_.ValueAt(kind, need[static_cast<size_t>(kind)]));
    }
    const DiagonalOptimizer::Target solved =
        optimizer_.Solve(want, AvailableBudget());
    if (!solved.feasible) {
      return HoldCurrent(
          input, Explanation(ExplanationCode::kHoldNoAffordableContainer));
    }
    ScalingDecision d;
    d.target = optimizer_.Materialize(solved);
    if (d.target.id != input.current.id &&
        d.target.id == rejected_target_id_ &&
        input.interval_index < rejected_until_interval_) {
      Explanation e(ExplanationCode::kHoldResizeRejected, d.target.name);
      e.args[0] = static_cast<double>(rejected_until_interval_ -
                                      input.interval_index);
      return HoldCurrent(input, std::move(e));
    }
    if (d.target.id == input.current.id) {
      if (solved.budget_limited) {
        Explanation e(ExplanationCode::kHoldBudgetBindingDimension,
                      solved.binding_dimension);
        e.args[0] = static_cast<double>(solved.shortfall_steps);
        e.args[1] = AvailableBudget();
        return HoldCurrent(input, std::move(e));
      }
      return HoldCurrent(input,
                         Explanation(ExplanationCode::kHoldNoLargerAffordable,
                                     est.SummaryIncrease()));
    }
    last_up_interval_ = input.interval_index;
    int ups = 0;
    int downs = 0;
    for (int dd = 0; dd < container::kNumResources; ++dd) {
      if (solved.levels[dd] > cur[dd]) ++ups;
      if (solved.levels[dd] < cur[dd]) ++downs;
    }
    if (solved.budget_limited) {
      const DiagonalOptimizer::Target unconstrained =
          optimizer_.Solve(want, std::numeric_limits<double>::infinity());
      d.explanation =
          Explanation(ExplanationCode::kScaleUpBudgetConstrained,
                      optimizer_.Materialize(unconstrained).name);
      d.explanation.args[0] = unconstrained.price;
      d.explanation.args[1] = AvailableBudget();
    } else if (ups > 0 && downs > 0) {
      d.explanation = Explanation(ExplanationCode::kScaleDiagonalRebalance,
                                  d.target.name);
      d.explanation.args[0] = static_cast<double>(ups);
      d.explanation.args[1] = static_cast<double>(downs);
    } else {
      d.explanation = Explanation(
          ExplanationCode::kScaleDiagonalUp,
          wait_directed
              ? StrFormat("wait-directed: %s %.0f%% of waits",
                          telemetry::WaitClassToString(dominant.wait_class),
                          dominant.pct)
              : est.SummaryIncrease());
      d.explanation.args[0] = d.target.price_per_interval;
      d.explanation.args[1] = input.current.price_per_interval;
    }
    return d;
  }

  if (latency_bad || degrading) {
    low_streak_ = 0;
    return HoldCurrent(
        input, Explanation(ExplanationCode::kHoldLatencyNotResource,
                           DominantWaitNote(signals)));
  }

  if (has_goal && est.AnyIncrease()) {
    low_streak_ = 0;
    return HoldCurrent(input,
                       Explanation(ExplanationCode::kHoldGoalMetSavings,
                                   est.SummaryIncrease()));
  }

  // -------- Scale-down path --------
  const bool slack_low =
      has_goal && options_.down_latency_slack_ratio > 0.0 &&
      signals.latency_ms <= options_.down_latency_slack_ratio *
                                knobs_.latency_goal->target_ms;
  // Utilization headroom is low-demand evidence of its own here: with
  // per-dimension pricing, every grid step of headroom is money on the
  // table even when no Section 4 shrink rule fires.
  bool util_at_or_below = true;
  bool util_strictly_below = false;
  for (int d = 0; d < container::kNumResources; ++d) {
    if (util_level[d] > cur[d]) util_at_or_below = false;
    if (util_level[d] < cur[d]) util_strictly_below = true;
  }
  const bool util_headroom = util_at_or_below && util_strictly_below;
  const bool demand_low =
      est.SuggestsShrink() || slack_low || util_headroom;
  if (!demand_low) {
    low_streak_ = 0;
    return HoldCurrent(input,
                       Explanation(ExplanationCode::kHoldDemandSteady));
  }
  // Shedding is only safe with latency headroom: near the goal, even a
  // one-level shed of an "idle" dimension can tip p95 over (queueing at
  // low utilization — the engine's bursty arrivals). Declining the saving
  // here is what keeps attainment at Auto's level while costing less.
  if (has_goal && options_.down_latency_gate_ratio > 0.0 &&
      signals.latency_ms > options_.down_latency_gate_ratio *
                               knobs_.latency_goal->target_ms) {
    low_streak_ = 0;
    return HoldCurrent(input,
                       Explanation(ExplanationCode::kHoldGoalMetSavings,
                                   "keeping latency headroom"));
  }
  ++low_streak_;
  if (low_streak_ < DownPatience()) {
    return HoldCurrent(
        input, Explanation(ExplanationCode::kHoldDownPatience,
                           static_cast<double>(low_streak_),
                           static_cast<double>(DownPatience())));
  }

  // Memory shrinks on the same per-dimension evidence as everything else:
  // no balloon pass — the flexible grid's fine steps (and the projected
  // utilization guard below) bound the risk a full rung drop would carry.
  GridLevels need = cur;
  for (ResourceKind kind : container::kAllResources) {
    const size_t d = static_cast<size_t>(kind);
    int cand = cur[d];
    const int steps = est.For(kind).steps;
    if (steps < 0) cand = cur[d] + steps * step;
    if (slack_low) cand = std::min(cand, cur[d] - step);
    if (util_level[d] < cur[d]) {
      // Pure utilization headroom sheds at most one rung-step at a time.
      cand = std::min(cand, std::max(util_level[d], cur[d] - step));
    }
    // Sub-rung grids make small sheds cheap to take and cheap to undo;
    // descending one grid level per move keeps each step's latency impact
    // observable before the next.
    cand = std::max(cand, cur[d] - options_.down_max_levels_per_move);
    cand = std::max(cand, std::min(cur[d], down_floor_[d]));
    cand = std::max(0, std::min(cand, cur[d]));
    while (cand < cur[d]) {
      const double alloc = optimizer_.ValueAt(kind, cand);
      if (alloc <= 0.0 || 100.0 * usage.Get(kind) / alloc <=
                              options_.down_projected_util_guard_pct) {
        break;
      }
      ++cand;
    }
    need[d] = cand;
  }

  ResourceVector want;
  for (ResourceKind kind : container::kAllResources) {
    want.Set(kind, optimizer_.ValueAt(kind, need[static_cast<size_t>(kind)]));
  }
  const DiagonalOptimizer::Target solved =
      optimizer_.Solve(want, AvailableBudget());
  if (!solved.feasible) {
    return HoldCurrent(
        input, Explanation(ExplanationCode::kHoldNoAffordableContainer));
  }
  ScalingDecision d;
  d.target = optimizer_.Materialize(solved);
  if (d.target.id != input.current.id &&
      d.target.id == rejected_target_id_ &&
      input.interval_index < rejected_until_interval_) {
    Explanation e(ExplanationCode::kHoldResizeRejected, d.target.name);
    e.args[0] = static_cast<double>(rejected_until_interval_ -
                                    input.interval_index);
    return HoldCurrent(input, std::move(e));
  }
  if (d.target.id == input.current.id ||
      d.target.price_per_interval >= input.current.price_per_interval) {
    return HoldCurrent(input,
                       Explanation(ExplanationCode::kHoldDemandSteady));
  }
  low_streak_ = 0;
  d.explanation = Explanation(
      ExplanationCode::kScaleDiagonalDown,
      est.AnyDecrease() ? est.SummaryDecrease()
                        : std::string("latency slack"));
  d.explanation.args[0] = d.target.price_per_interval;
  d.explanation.args[1] = input.current.price_per_interval;
  return d;
}

}  // namespace dbscale::scaler
