#include "src/scaler/audit.h"

#include "src/common/check.h"
#include "src/common/string_util.h"

namespace dbscale::scaler {

const char* ResizeOutcomeToString(ResizeOutcome outcome) {
  switch (outcome) {
    case ResizeOutcome::kNone:
      return "none";
    case ResizeOutcome::kRequested:
      return "requested";
    case ResizeOutcome::kApplied:
      return "applied";
    case ResizeOutcome::kFailed:
      return "failed";
    case ResizeOutcome::kRejected:
      return "rejected";
    case ResizeOutcome::kAbandoned:
      return "abandoned";
  }
  return "?";
}

std::string AuditRecord::ToString() const {
  std::string out = StrFormat("[%4d] %-4s %s %-4s | p95=%6.0fms | %s",
                              interval_index, from_container.c_str(),
                              resized ? "->" : "==", to_container.c_str(),
                              latency_ms, explanation.c_str());
  if (resize_outcome != ResizeOutcome::kNone) {
    out += StrFormat(" [resize %s, attempt %d]",
                     ResizeOutcomeToString(resize_outcome), resize_attempt);
  }
  return out;
}

AuditLog::AuditLog(size_t max_records) : max_records_(max_records) {
  DBSCALE_CHECK(max_records > 0);
}

void AuditLog::Record(const PolicyInput& input,
                      const CategorizedSignals& cats,
                      const DemandEstimate& estimate,
                      const ScalingDecision& decision, int resize_attempt) {
  AuditRecord record;
  record.interval_index = input.interval_index;
  record.time = input.now;
  record.latency_ms = input.signals.latency_ms;
  for (container::ResourceKind kind : container::kAllResources) {
    const size_t ri = static_cast<size_t>(kind);
    record.utilization_pct[ri] =
        input.signals.resource(kind).utilization_pct;
    record.wait_ms_per_request[ri] =
        input.signals.resource(kind).wait_ms_per_request;
  }
  if (cats.valid) {
    record.categories = cats.ToString();
    record.estimate = estimate.Summary();
  }
  record.from_container = input.current.name;
  record.to_container = decision.target.name;
  record.resized = decision.Changed(input.current);
  if (record.resized) {
    record.resize_outcome = ResizeOutcome::kRequested;
    record.resize_attempt = resize_attempt;
  }
  record.code = decision.explanation.code;
  record.explanation = decision.explanation.ToString();

  records_.push_back(std::move(record));
  while (records_.size() > max_records_) records_.pop_front();
}

void AuditLog::NoteResizeOutcome(ResizeOutcome outcome, int attempt) {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->resize_outcome == ResizeOutcome::kRequested) {
      it->resize_outcome = outcome;
      it->resize_attempt = attempt;
      return;
    }
    if (it->resize_outcome != ResizeOutcome::kNone) {
      // The most recent resize request is already settled; the feedback is
      // stale (e.g. a duplicate report) — ignore it.
      return;
    }
  }
}

std::vector<const AuditRecord*> AuditLog::Resizes() const {
  std::vector<const AuditRecord*> out;
  for (const AuditRecord& r : records_) {
    if (r.resized) out.push_back(&r);
  }
  return out;
}

std::string AuditLog::ToString(size_t n) const {
  const size_t start =
      (n == 0 || n >= records_.size()) ? 0 : records_.size() - n;
  std::string out;
  for (size_t i = start; i < records_.size(); ++i) {
    out += records_[i].ToString() + "\n";
  }
  return out;
}

std::string AuditLog::ToCsv() const {
  std::string out =
      "interval,time_sec,latency_ms,cpu_util,mem_util,disk_util,log_util,"
      "from,to,resized,resize_outcome,resize_attempt,code,explanation\n";
  for (const AuditRecord& r : records_) {
    out += StrFormat(
        "%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%s,%s,%d,%s,%d,%s,",
        r.interval_index, r.time.ToSeconds(), r.latency_ms,
        r.utilization_pct[0], r.utilization_pct[1], r.utilization_pct[2],
        r.utilization_pct[3], r.from_container.c_str(),
        r.to_container.c_str(), r.resized ? 1 : 0,
        ResizeOutcomeToString(r.resize_outcome), r.resize_attempt,
        ExplanationCodeToken(r.code));
    CsvEscapeTo(r.explanation, out);
    out += '\n';
  }
  return out;
}

void AuditLog::Clear() { records_.clear(); }

}  // namespace dbscale::scaler
