// Batched multi-tenant decision evaluation: the scaler's entry point for
// evaluating many tenants' Decide calls in one shot over the deterministic
// ThreadPool.
//
// Contract (same shape as every parallel path in this repo): the caller
// fills one DecisionSlot per tenant, DecideBatch runs each slot's policy
// against its input with workers writing ONLY their own slot, and the
// caller then folds the decisions in slot order. Because policies share no
// state across slots and the fold order is fixed by the caller, the
// results are bit-identical at any thread count — including pool == null
// (serial). ScalerService relies on this to keep service-mode decisions
// digest-identical to sim-loop decisions.

#ifndef DBSCALE_SCALER_BATCH_EVAL_H_
#define DBSCALE_SCALER_BATCH_EVAL_H_

#include <cstddef>
#include <cstdint>

#include "src/common/thread_pool.h"
#include "src/scaler/policy.h"

namespace dbscale::scaler {

/// One tenant's work item in a batched evaluation. The caller owns the
/// policy and prepares the input; DecideBatch writes `decision` (and
/// `decide_ns` when a timer is supplied).
struct DecisionSlot {
  /// Evaluated policy; must not be shared with any other slot in the
  /// batch (policies are stateful).
  ScalingPolicy* policy = nullptr;
  PolicyInput input;
  ScalingDecision decision;
  /// Wall time of this slot's Decide, filled only when DecideBatch is
  /// given a timer (0 otherwise). Diagnostic only — never feeds results.
  uint64_t decide_ns = 0;
};

/// Runs `slots[i].decision = slots[i].policy->Decide(slots[i].input)` for
/// every i in [0, count), in parallel over `pool` (serial inline when pool
/// is null). Each worker writes only its own slot; the caller merges in
/// slot order. `timer` (e.g. a steady-clock-ns reader supplied by a bench)
/// is called twice per slot to fill decide_ns; results are identical with
/// or without it.
void DecideBatch(DecisionSlot* slots, size_t count, ThreadPool* pool,
                 uint64_t (*timer)() = nullptr);

}  // namespace dbscale::scaler

#endif  // DBSCALE_SCALER_BATCH_EVAL_H_
