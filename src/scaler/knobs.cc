#include "src/scaler/knobs.h"

#include "src/common/string_util.h"

namespace dbscale::scaler {

const char* SensitivityToString(Sensitivity s) {
  switch (s) {
    case Sensitivity::kLow:
      return "LOW";
    case Sensitivity::kMedium:
      return "MEDIUM";
    case Sensitivity::kHigh:
      return "HIGH";
  }
  return "?";
}

Status TenantKnobs::Validate() const {
  if (budget.has_value()) {
    if (budget->total_budget <= 0.0) {
      return Status::InvalidArgument("budget must be positive");
    }
    if (budget->num_intervals <= 0) {
      return Status::InvalidArgument(
          "budgeting period must cover at least one interval");
    }
  }
  if (latency_goal.has_value() && latency_goal->target_ms <= 0.0) {
    return Status::InvalidArgument("latency goal must be positive");
  }
  return Status::OK();
}

std::string TenantKnobs::ToString() const {
  std::string out = "knobs{";
  if (budget.has_value()) {
    out += StrFormat("budget=%.0f/%d intervals, ", budget->total_budget,
                     budget->num_intervals);
  }
  if (latency_goal.has_value()) {
    out += StrFormat(
        "goal=%s<=%.0fms, ",
        telemetry::LatencyAggregateToString(latency_goal->aggregate),
        latency_goal->target_ms);
  }
  out += StrFormat("sensitivity=%s}", SensitivityToString(sensitivity));
  return out;
}

}  // namespace dbscale::scaler
