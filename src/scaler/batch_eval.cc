#include "src/scaler/batch_eval.h"

#include "src/common/check.h"

namespace dbscale::scaler {

namespace {

// dbscale-hot: per-slot kernel of the batched evaluation; the machinery
// itself must not allocate (policies may, e.g. the audit trail).
void EvalSlot(DecisionSlot& slot, uint64_t (*timer)()) {
  DBSCALE_DCHECK(slot.policy != nullptr);
  const uint64_t t0 = timer != nullptr ? timer() : 0;
  slot.decision = slot.policy->Decide(slot.input);
  slot.decide_ns = timer != nullptr ? timer() - t0 : 0;
}

}  // namespace

void DecideBatch(DecisionSlot* slots, size_t count, ThreadPool* pool,
                 uint64_t (*timer)()) {
  if (count == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) EvalSlot(slots[i], timer);
    return;
  }
  pool->ParallelFor(0, static_cast<int64_t>(count),
                    [slots, timer](int64_t i) { EvalSlot(slots[i], timer); });
}

}  // namespace dbscale::scaler
