// Resource demand estimator (Section 4 of the paper).
//
// Each signal is at best weakly predictive of demand; the estimator combines
// them with a manually-constructed hierarchy of rules built from domain
// knowledge of database engines. If multiple weak signals agree that demand
// is high, the likelihood of truly-high demand rises sharply.
//
// The hierarchy is a first-match-wins ordered rule table per resource. Each
// rule is a categorical precondition pattern plus an outcome in container
// *steps*: the paper constrains estimates to {0, 1, 2} steps up or down
// because 90% of observed demand changes are 1 rung and 98% are <= 2.
//
// Design choice (DESIGN.md): rules are *data*, so tests can enumerate them,
// explanations fall out of the matched rule, and ablation benchmarks can
// drop whole signal families (waits / trends / correlation).

#ifndef DBSCALE_SCALER_DEMAND_ESTIMATOR_H_
#define DBSCALE_SCALER_DEMAND_ESTIMATOR_H_

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "src/scaler/categories.h"
#include "src/scaler/explanation.h"

namespace dbscale::scaler {

/// Maximum container steps a single estimate may move (paper Section 4).
inline constexpr int kMaxDemandSteps = 2;

/// One rule of the hierarchy: a precondition pattern over the categorical
/// signals of a resource, and the demand steps implied when it matches.
struct DemandRule {
  std::string name;
  /// Precondition pattern; nullopt means "don't care".
  std::optional<Level> utilization;
  std::optional<Level> wait_magnitude;
  std::optional<Significance> wait_share;
  std::optional<Significance> correlation;
  /// Requires a significant increasing trend in utilization or waits.
  bool require_increasing_trend = false;
  /// Requires that neither utilization nor waits trend upward.
  bool forbid_increasing_trend = false;
  /// Requires the extreme variants (very high utilization / waits): used
  /// for 2-step rules.
  bool require_extreme = false;
  /// Demand outcome in [-kMaxDemandSteps, kMaxDemandSteps].
  int steps = 0;
  /// Stable code of this rule; rendered per-resource by
  /// Explanation::ToString().
  ExplanationCode code = ExplanationCode::kUnset;

  bool Matches(const ResourceCategories& r) const;
};

/// Demand estimate for one resource.
struct ResourceDemand {
  int steps = 0;
  /// Name of the matched rule (empty when no rule matched).
  std::string rule;
  /// Matched rule's code with `resource` filled in (kUnset: no match).
  Explanation explanation;
};

/// \brief Demand estimate across all resources.
struct DemandEstimate {
  std::array<ResourceDemand, container::kNumResources> demand{};

  const ResourceDemand& For(container::ResourceKind kind) const {
    return demand[static_cast<size_t>(kind)];
  }
  bool AnyIncrease() const;
  bool AnyDecrease() const;
  /// True when no resource shows demand for more.
  bool NoneIncrease() const;
  /// True when every resource's demand is negative or zero with at least
  /// one negative.
  bool SuggestsShrink() const;

  std::string Summary() const;
  /// Like Summary() but restricted to one sign of demand.
  std::string SummaryIncrease() const;
  std::string SummaryDecrease() const;
};

/// Ablation switches (each disables one signal family; used by
/// bench_ablation_signals and discussed in DESIGN.md).
struct DemandEstimatorOptions {
  bool use_waits = true;
  bool use_trends = true;
  bool use_correlation = true;
};

/// \brief Applies the rule hierarchy to categorized signals.
class DemandEstimator {
 public:
  explicit DemandEstimator(DemandEstimatorOptions options = {});

  DemandEstimate Estimate(const CategorizedSignals& signals) const;

  /// The active rule tables (after ablation transforms), for tests and
  /// debugging.
  const std::vector<DemandRule>& high_rules() const { return high_rules_; }
  const std::vector<DemandRule>& low_rules() const { return low_rules_; }

  const DemandEstimatorOptions& options() const { return options_; }

 private:
  void BuildRules();

  DemandEstimatorOptions options_;
  std::vector<DemandRule> high_rules_;
  std::vector<DemandRule> low_rules_;
};

}  // namespace dbscale::scaler

#endif  // DBSCALE_SCALER_DEMAND_ESTIMATOR_H_
