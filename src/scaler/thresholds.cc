#include "src/scaler/thresholds.h"

#include "src/common/string_util.h"

namespace dbscale::scaler {

SignalThresholds SignalThresholds::Default() {
  SignalThresholds t;
  // The 30/70 utilization split is the administrator folklore the paper
  // references; wait thresholds are per-request and differ by resource:
  // CPU waits accumulate faster than I/O waits for the same level of
  // pressure because every execution slice queues.
  // Disk waits are queueing-only (the IOPS quota's pacing is nominal
  // service); log waits include the flush itself (WRITELOG semantics), so
  // the log thresholds sit higher.
  t.For(container::ResourceKind::kCpu) =
      ResourceThresholds{30.0, 70.0, 2.0, 30.0, 30.0};
  t.For(container::ResourceKind::kMemory) =
      ResourceThresholds{30.0, 85.0, 1.0, 20.0, 25.0};
  t.For(container::ResourceKind::kDiskIo) =
      ResourceThresholds{30.0, 70.0, 2.0, 25.0, 30.0};
  t.For(container::ResourceKind::kLogIo) =
      ResourceThresholds{30.0, 70.0, 8.0, 60.0, 25.0};
  return t;
}

Status SignalThresholds::Validate() const {
  for (container::ResourceKind kind : container::kAllResources) {
    const ResourceThresholds& r = For(kind);
    if (r.util_low_pct < 0.0 || r.util_high_pct > 100.0 ||
        r.util_low_pct >= r.util_high_pct) {
      return Status::InvalidArgument(StrFormat(
          "%s: need 0 <= util_low < util_high <= 100",
          container::ResourceKindToString(kind)));
    }
    if (r.wait_low_ms_per_req < 0.0 ||
        r.wait_low_ms_per_req >= r.wait_high_ms_per_req) {
      return Status::InvalidArgument(StrFormat(
          "%s: need 0 <= wait_low < wait_high",
          container::ResourceKindToString(kind)));
    }
    if (r.wait_pct_significant <= 0.0 || r.wait_pct_significant > 100.0) {
      return Status::OutOfRange(StrFormat(
          "%s: wait_pct_significant must be in (0, 100]",
          container::ResourceKindToString(kind)));
    }
  }
  if (correlation_significant <= 0.0 || correlation_significant > 1.0) {
    return Status::OutOfRange("correlation_significant must be in (0, 1]");
  }
  if (extreme_factor <= 1.0) {
    return Status::OutOfRange("extreme_factor must exceed 1");
  }
  return Status::OK();
}

std::string SignalThresholds::ToString() const {
  std::string out = "thresholds{\n";
  for (container::ResourceKind kind : container::kAllResources) {
    const ResourceThresholds& r = For(kind);
    out += StrFormat(
        "  %-8s util[%.0f, %.0f]%% wait[%.1f, %.1f]ms/req share>%.0f%%\n",
        container::ResourceKindToString(kind), r.util_low_pct,
        r.util_high_pct, r.wait_low_ms_per_req, r.wait_high_ms_per_req,
        r.wait_pct_significant);
  }
  out += StrFormat("  corr>%.2f extreme x%.1f\n}", correlation_significant,
                   extreme_factor);
  return out;
}

}  // namespace dbscale::scaler
