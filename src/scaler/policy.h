// ScalingPolicy: the interface between the simulation's billing-interval
// loop and any container-sizing strategy (the paper's Auto plus every
// baseline in Section 7.2).

#ifndef DBSCALE_SCALER_POLICY_H_
#define DBSCALE_SCALER_POLICY_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/container/catalog.h"
#include "src/host/actuation.h"
#include "src/obs/pipeline.h"
#include "src/scaler/explanation.h"
#include "src/telemetry/manager.h"

namespace dbscale::scaler {

/// The actuation vocabulary policies speak (one surface for local resizes
/// and migrations — see src/host/actuation.h). The harness drives the
/// asynchronous lifecycle (Pending -> Applied | Failed) and reports the
/// most recent transition in PolicyInput.actuation before each Decide;
/// policies that ignore it simply keep requesting their preferred target.
using host::ActuationFeedback;
using host::ActuationKind;
using host::ActuationPhase;

/// The per-resource vector type policies reason in (CPU cores, memory MB,
/// disk IOPS, log MB/s): a fixed 4-dim POD with per-dimension ops and an
/// FNV digest fold (ResourceVector::Fold).
using ResourceVector = container::ResourceVector;

/// What a policy sees at the end of each billing interval.
struct PolicyInput {
  SimTime now;
  /// Signals computed by the telemetry manager; may be !valid early on.
  telemetry::SignalSnapshot signals;
  /// Container in effect during the interval that just ended.
  container::ContainerSpec current;
  /// Zero-based index of the interval that just ended.
  int interval_index = 0;
  /// Price billed for the interval that just ended (<= 0: nothing was
  /// billed, e.g. a dry run). Budget-aware policies account for it at the
  /// top of Decide() — there is no separate charge callback.
  double charged_cost = 0.0;
  /// Mean absolute per-resource usage over the interval that just ended
  /// (cores, active MB, IOPS, log MB/s). Filled by harnesses with engine
  /// truth (the sim loop); zero when the harness only has signals — demand
  /// estimators must fall back to utilization x allocation then.
  ResourceVector usage;
  /// Actuation-lifecycle feedback for the previously requested change
  /// (local resize or migration).
  ActuationFeedback actuation;
  /// The tenant's placement (host id, headroom, interference) when a host
  /// plane is attached; `placement.present == false` otherwise.
  host::PlacementView placement;
  /// Observability handle (no-ops when disabled). Policies record decision
  /// metrics and nest spans under `obs.trace.parent`.
  obs::Sink obs;
};

/// A policy's choice for the next billing interval.
struct ScalingDecision {
  container::ContainerSpec target;
  /// The per-resource demand estimate behind the decision, in absolute
  /// units (zero where the policy had no per-resource estimate). The
  /// diagonal scaler always fills it; Auto fills it on scale-ups.
  ResourceVector demand;
  /// Structured reason for the decision; Explanation::ToString() renders
  /// the text the paper surfaces to tenants.
  Explanation explanation;
  /// Balloon override for effective memory; the harness forwards it to
  /// DatabaseEngine::SetMemoryLimitMb. nullopt leaves memory alone.
  std::optional<double> memory_limit_mb;

  bool Changed(const container::ContainerSpec& current) const {
    return target.id != current.id;
  }
};

/// \brief Abstract container-sizing strategy.
class ScalingPolicy {
 public:
  virtual ~ScalingPolicy() = default;

  /// Decides the container for the next interval. `input.charged_cost`
  /// carries the price of the interval that just ended.
  virtual ScalingDecision Decide(const PolicyInput& input) = 0;

  /// Policy display name ("Auto", "Util", "Peak", ...).
  virtual std::string name() const = 0;
};

}  // namespace dbscale::scaler

#endif  // DBSCALE_SCALER_POLICY_H_
