// ScalingPolicy: the interface between the simulation's billing-interval
// loop and any container-sizing strategy (the paper's Auto plus every
// baseline in Section 7.2).

#ifndef DBSCALE_SCALER_POLICY_H_
#define DBSCALE_SCALER_POLICY_H_

#include <optional>
#include <string>

#include "src/container/catalog.h"
#include "src/telemetry/manager.h"

namespace dbscale::scaler {

/// What a policy sees at the end of each billing interval.
struct PolicyInput {
  SimTime now;
  /// Signals computed by the telemetry manager; may be !valid early on.
  telemetry::SignalSnapshot signals;
  /// Container in effect during the interval that just ended.
  container::ContainerSpec current;
  /// Zero-based index of the interval that just ended.
  int interval_index = 0;
};

/// A policy's choice for the next billing interval.
struct ScalingDecision {
  container::ContainerSpec target;
  /// Human-readable reason ("Scale-up due to CPU bottleneck", ...). The
  /// paper surfaces these to tenants; experiments log them.
  std::string explanation;
  /// Balloon override for effective memory; the harness forwards it to
  /// DatabaseEngine::SetMemoryLimitMb. nullopt leaves memory alone.
  std::optional<double> memory_limit_mb;

  bool Changed(const container::ContainerSpec& current) const {
    return target.id != current.id;
  }
};

/// \brief Abstract container-sizing strategy.
class ScalingPolicy {
 public:
  virtual ~ScalingPolicy() = default;

  /// Decides the container for the next interval.
  virtual ScalingDecision Decide(const PolicyInput& input) = 0;

  /// Notifies the policy of the price actually charged for the interval
  /// that just started (after Decide); budget-aware policies account here.
  virtual void OnIntervalCharged(double cost) { (void)cost; }

  /// Policy display name ("Auto", "Util", "Peak", ...).
  virtual std::string name() const = 0;
};

}  // namespace dbscale::scaler

#endif  // DBSCALE_SCALER_POLICY_H_
