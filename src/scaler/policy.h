// ScalingPolicy: the interface between the simulation's billing-interval
// loop and any container-sizing strategy (the paper's Auto plus every
// baseline in Section 7.2).

#ifndef DBSCALE_SCALER_POLICY_H_
#define DBSCALE_SCALER_POLICY_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/container/catalog.h"
#include "src/obs/pipeline.h"
#include "src/scaler/explanation.h"
#include "src/telemetry/manager.h"

namespace dbscale::scaler {

/// Outcome feedback for a resize requested by an earlier decision. The
/// harness drives the asynchronous resize lifecycle (Pending -> Applied |
/// Failed) and reports the most recent transition here before each Decide;
/// policies that ignore it simply keep requesting their preferred target.
struct ResizeFeedback {
  enum class Phase : uint8_t {
    kNone,     ///< no resize outstanding
    kPending,  ///< still in flight (actuation latency)
    kApplied,  ///< applied at the start of this interval
    kFailed,   ///< failed transiently; retrying may succeed
    kRejected  ///< rejected permanently; retrying the same target is futile
  };
  Phase phase = Phase::kNone;
  /// Target of the attempt the feedback refers to.
  container::ContainerSpec target;
  /// 1-based attempt number toward that target.
  int attempt = 0;
};

/// What a policy sees at the end of each billing interval.
struct PolicyInput {
  SimTime now;
  /// Signals computed by the telemetry manager; may be !valid early on.
  telemetry::SignalSnapshot signals;
  /// Container in effect during the interval that just ended.
  container::ContainerSpec current;
  /// Zero-based index of the interval that just ended.
  int interval_index = 0;
  /// Price billed for the interval that just ended (<= 0: nothing was
  /// billed, e.g. a dry run). Budget-aware policies account for it at the
  /// top of Decide() — there is no separate charge callback.
  double charged_cost = 0.0;
  /// Resize-lifecycle feedback for the previously requested resize.
  ResizeFeedback resize;
  /// Observability handle (no-ops when disabled). Policies record decision
  /// metrics and nest spans under `obs.trace.parent`.
  obs::Sink obs;
};

/// A policy's choice for the next billing interval.
struct ScalingDecision {
  container::ContainerSpec target;
  /// Structured reason for the decision; Explanation::ToString() renders
  /// the text the paper surfaces to tenants.
  Explanation explanation;
  /// Balloon override for effective memory; the harness forwards it to
  /// DatabaseEngine::SetMemoryLimitMb. nullopt leaves memory alone.
  std::optional<double> memory_limit_mb;

  bool Changed(const container::ContainerSpec& current) const {
    return target.id != current.id;
  }
};

/// \brief Abstract container-sizing strategy.
class ScalingPolicy {
 public:
  virtual ~ScalingPolicy() = default;

  /// Decides the container for the next interval. `input.charged_cost`
  /// carries the price of the interval that just ended.
  virtual ScalingDecision Decide(const PolicyInput& input) = 0;

  /// Policy display name ("Auto", "Util", "Peak", ...).
  virtual std::string name() const = 0;
};

}  // namespace dbscale::scaler

#endif  // DBSCALE_SCALER_POLICY_H_
