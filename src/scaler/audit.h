// Decision audit log (Section 4 of the paper).
//
// The estimator's categorical rules make every container-sizing action
// explainable: "Scale-up due to a CPU bottleneck", "Scale-up constrained by
// budget". The paper surfaces these explanations to end-users and exposes
// the underlying signals to administrators for diagnostics. AuditLog is
// that surface: a bounded history of per-decision records — the signals
// read, the categories they mapped to, the estimate, and the action taken —
// renderable as text or CSV.

#ifndef DBSCALE_SCALER_AUDIT_H_
#define DBSCALE_SCALER_AUDIT_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/scaler/categories.h"
#include "src/scaler/demand_estimator.h"
#include "src/scaler/policy.h"

namespace dbscale::scaler {

/// How a requested resize resolved on the actuation channel. Requests are
/// recorded kRequested and settled in place by NoteResizeOutcome() when
/// the lifecycle reports back; kNone marks non-resize decisions.
enum class ResizeOutcome : uint8_t {
  kNone,       ///< decision did not change the container
  kRequested,  ///< issued; outcome not yet reported
  kApplied,    ///< actuation succeeded
  kFailed,     ///< transient failure (a retry may follow)
  kRejected,   ///< permanent rejection
  kAbandoned   ///< failed and retry budget exhausted
};

const char* ResizeOutcomeToString(ResizeOutcome outcome);

/// One decision's full story.
struct AuditRecord {
  int interval_index = 0;
  SimTime time;
  /// What the scaler saw.
  double latency_ms = 0.0;
  std::array<double, container::kNumResources> utilization_pct{};
  std::array<double, container::kNumResources> wait_ms_per_request{};
  /// How it categorized it (empty when telemetry was not yet valid).
  std::string categories;
  /// What it estimated.
  std::string estimate;
  /// What it did.
  std::string from_container;
  std::string to_container;
  bool resized = false;
  /// Lifecycle outcome of the resize this decision requested (kNone for
  /// non-resize decisions; kRequested until the lifecycle settles it).
  ResizeOutcome resize_outcome = ResizeOutcome::kNone;
  /// 1-based attempt number of the resize request (0 for non-resizes);
  /// updated to the final attempt count when the outcome settles.
  int resize_attempt = 0;
  /// Stable machine-readable reason for the decision.
  ExplanationCode code = ExplanationCode::kUnset;
  /// Rendered Explanation::ToString() text of the decision.
  std::string explanation;

  /// Single-line rendering ("[12] S4 -> S6 | Scale-up: ...").
  std::string ToString() const;
};

/// \brief Bounded decision history with render helpers.
class AuditLog {
 public:
  explicit AuditLog(size_t max_records = 4096);

  /// Builds and appends the record for one decision. Resize decisions are
  /// recorded with outcome kRequested and `resize_attempt` (1 for a first
  /// attempt; retries pass their attempt number).
  void Record(const PolicyInput& input, const CategorizedSignals& cats,
              const DemandEstimate& estimate,
              const ScalingDecision& decision, int resize_attempt = 1);

  /// Settles the most recent unresolved resize request (outcome
  /// kRequested) with how the actuation channel resolved it and the final
  /// attempt count. No-op when no request is outstanding.
  void NoteResizeOutcome(ResizeOutcome outcome, int attempt);

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const AuditRecord& at(size_t i) const { return records_[i]; }
  const AuditRecord& back() const { return records_.back(); }

  /// Records where the container actually changed.
  std::vector<const AuditRecord*> Resizes() const;

  /// Text rendering of the most recent `n` records (all if n == 0).
  std::string ToString(size_t n = 0) const;

  /// CSV with one row per decision (diagnostics export).
  std::string ToCsv() const;

  void Clear();

 private:
  size_t max_records_;
  std::deque<AuditRecord> records_;
};

}  // namespace dbscale::scaler

#endif  // DBSCALE_SCALER_AUDIT_H_
