#include "src/scaler/categories.h"

#include <algorithm>
#include <cmath>

#include "src/common/string_util.h"

namespace dbscale::scaler {

namespace {

Level Categorize3(double value, double low, double high) {
  if (value < low) return Level::kLow;
  if (value >= high) return Level::kHigh;
  return Level::kMedium;
}

}  // namespace

const char* LatencyCategoryToString(LatencyCategory c) {
  return c == LatencyCategory::kGood ? "GOOD" : "BAD";
}

const char* LevelToString(Level level) {
  switch (level) {
    case Level::kLow:
      return "LOW";
    case Level::kMedium:
      return "MEDIUM";
    case Level::kHigh:
      return "HIGH";
  }
  return "?";
}

const char* SignificanceToString(Significance s) {
  return s == Significance::kSignificant ? "SIGNIFICANT" : "NOT-SIGNIFICANT";
}

std::string CategorizedSignals::ToString() const {
  if (!valid) return "<invalid>";
  std::string out =
      StrFormat("latency=%s%s", LatencyCategoryToString(latency),
                latency_degrading ? "(degrading)" : "");
  for (container::ResourceKind kind : container::kAllResources) {
    const ResourceCategories& r = resource(kind);
    out += StrFormat(
        " | %s: util=%s wait=%s share=%s corr=%s",
        container::ResourceKindToString(kind),
        LevelToString(r.utilization), LevelToString(r.wait_magnitude),
        SignificanceToString(r.wait_share),
        SignificanceToString(r.wait_latency_correlation));
  }
  return out;
}

CategorizedSignals Categorize(const telemetry::SignalSnapshot& signals,
                              const SignalThresholds& thresholds,
                              const std::optional<LatencyGoal>& goal,
                              const CategorizeOptions& options) {
  CategorizedSignals out;
  out.valid = signals.valid;
  if (!signals.valid) return out;

  out.has_latency_goal = goal.has_value();
  if (goal.has_value()) {
    out.latency =
        signals.latency_ms > goal->target_ms * options.latency_bad_fraction
            ? LatencyCategory::kBad
            : LatencyCategory::kGood;
    out.latency_ratio =
        goal->target_ms > 0.0 ? signals.latency_ms / goal->target_ms : 1.0;
    // Degrading: a significant increasing trend whose projection crosses
    // the goal within the horizon. The trend slope is per sample-index; a
    // sample spans (snapshot) period seconds, but treating the horizon in
    // samples keeps this robust to period changes: project over the trend
    // window length again.
    if (out.latency != LatencyCategory::kBad &&
        signals.latency_trend.significant &&
        signals.latency_trend.direction ==
            stats::TrendDirection::kIncreasing) {
      const double horizon_samples =
          std::max(1.0, options.latency_projection_sec / 5.0);
      const double projected =
          signals.latency_ms +
          signals.latency_trend.slope * horizon_samples;
      out.latency_degrading = projected > goal->target_ms;
    }
  }

  for (container::ResourceKind kind : container::kAllResources) {
    const ResourceThresholds& t = thresholds.For(kind);
    const telemetry::ResourceSignals& s = signals.resource(kind);
    ResourceCategories& r =
        out.resources[static_cast<size_t>(kind)];

    r.utilization =
        Categorize3(s.utilization_pct, t.util_low_pct, t.util_high_pct);
    r.utilization_extreme =
        s.utilization_pct >=
        std::min(95.0, t.util_high_pct +
                           (100.0 - t.util_high_pct) * 0.66);
    r.utilization_very_low = s.utilization_pct < t.util_low_pct / 2.0;
    r.wait_magnitude = Categorize3(s.wait_ms_per_request,
                                   t.wait_low_ms_per_req,
                                   t.wait_high_ms_per_req);
    r.wait_extreme = s.wait_ms_per_request >=
                     t.wait_high_ms_per_req * thresholds.extreme_factor;
    r.wait_very_low = s.wait_ms_per_request < t.wait_low_ms_per_req / 2.0;
    r.wait_share = s.wait_pct >= t.wait_pct_significant
                       ? Significance::kSignificant
                       : Significance::kNotSignificant;
    r.utilization_trend = s.utilization_trend.significant
                              ? s.utilization_trend.direction
                              : stats::TrendDirection::kNone;
    r.wait_trend = s.wait_trend.significant ? s.wait_trend.direction
                                            : stats::TrendDirection::kNone;
    r.wait_latency_correlation =
        std::fabs(s.wait_latency_correlation) >=
                thresholds.correlation_significant
            ? Significance::kSignificant
            : Significance::kNotSignificant;
  }
  return out;
}

}  // namespace dbscale::scaler
