#include "src/scaler/balloon.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/string_util.h"

namespace dbscale::scaler {

BalloonController::BalloonController(BalloonOptions options)
    : options_(options) {
  DBSCALE_CHECK(options.shrink_step_fraction > 0.0 &&
                options.shrink_step_fraction <= 1.0);
  DBSCALE_CHECK(options.io_abort_factor >= 1.0);
  DBSCALE_CHECK(options.cooldown_ticks >= 0);
}

bool BalloonController::CanStart(int tick) const {
  if (state_ == State::kShrinking) return false;
  return tick >= cooldown_until_tick_;
}

Status BalloonController::Start(double start_mb, double target_mb,
                                double baseline_reads_per_sec, int tick,
                                double abort_margin_rps) {
  if (!CanStart(tick)) {
    return Status::FailedPrecondition(
        "balloon already active or in cooldown");
  }
  if (target_mb <= 0.0 || target_mb >= start_mb) {
    return Status::InvalidArgument(
        StrFormat("balloon target %.0f MB must be in (0, %.0f)", target_mb,
                  start_mb));
  }
  state_ = State::kShrinking;
  start_mb_ = start_mb;
  target_mb_ = target_mb;
  current_limit_mb_ = start_mb;
  step_mb_ = (start_mb - target_mb) * options_.shrink_step_fraction;
  baseline_reads_per_sec_ = baseline_reads_per_sec;
  abort_margin_rps_ =
      abort_margin_rps >= 0.0 ? abort_margin_rps : options_.io_abort_margin_rps;
  return Status::OK();
}

BalloonController::Advice BalloonController::Tick(double reads_per_sec,
                                                  int tick) {
  DBSCALE_CHECK(state_ == State::kShrinking);
  Advice advice;

  const double abort_threshold =
      baseline_reads_per_sec_ * options_.io_abort_factor + abort_margin_rps_;
  if (reads_per_sec > abort_threshold) {
    // The shrink is costing I/O: revert to the container's allocation and
    // back off.
    advice.aborted = true;
    advice.memory_limit_mb = start_mb_;
    advice.explanation =
        Explanation(ExplanationCode::kHoldBalloonAborted, current_limit_mb_,
                    reads_per_sec, baseline_reads_per_sec_);
    state_ = State::kCooldown;
    cooldown_until_tick_ = tick + options_.cooldown_ticks;
    current_limit_mb_ = start_mb_;
    return advice;
  }

  if (current_limit_mb_ <= target_mb_) {
    // Held at the target with healthy I/O: low memory demand confirmed.
    advice.completed = true;
    advice.explanation =
        Explanation(ExplanationCode::kBalloonCompleted, target_mb_);
    state_ = State::kIdle;
    return advice;
  }

  current_limit_mb_ = std::max(target_mb_, current_limit_mb_ - step_mb_);
  advice.memory_limit_mb = current_limit_mb_;
  advice.explanation =
      Explanation(ExplanationCode::kHoldBalloonShrinking, current_limit_mb_,
                  target_mb_);
  return advice;
}

void BalloonController::Reset() {
  state_ = State::kIdle;
  start_mb_ = target_mb_ = current_limit_mb_ = step_mb_ = 0.0;
  baseline_reads_per_sec_ = 0.0;
}

}  // namespace dbscale::scaler
