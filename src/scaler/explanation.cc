#include "src/scaler/explanation.h"

#include "src/common/check.h"
#include "src/common/string_util.h"

namespace dbscale::scaler {

namespace {

const char* ResourceName(const Explanation& e) {
  // kRule* codes are per-resource by construction; default defensively so
  // a mis-built Explanation still renders.
  return e.resource.has_value()
             ? container::ResourceKindToString(*e.resource)
             : "resource";
}

}  // namespace

const char* ExplanationCodeToken(ExplanationCode code) {
  switch (code) {
    case ExplanationCode::kUnset:
      return "unset";
    case ExplanationCode::kNote:
      return "note";
    case ExplanationCode::kHoldWarmup:
      return "hold_warmup";
    case ExplanationCode::kHoldUpCooldown:
      return "hold_up_cooldown";
    case ExplanationCode::kHoldNoAffordableContainer:
      return "hold_no_affordable_container";
    case ExplanationCode::kHoldNoLargerAffordable:
      return "hold_no_larger_affordable";
    case ExplanationCode::kScaleUpBudgetConstrained:
      return "scale_up_budget_constrained";
    case ExplanationCode::kScaleUpDemand:
      return "scale_up_demand";
    case ExplanationCode::kHoldLatencyNotResource:
      return "hold_latency_not_resource";
    case ExplanationCode::kHoldBalloonRevert:
      return "hold_balloon_revert";
    case ExplanationCode::kHoldGoalMetSavings:
      return "hold_goal_met_savings";
    case ExplanationCode::kHoldBalloonShrinking:
      return "hold_balloon_shrinking";
    case ExplanationCode::kHoldBalloonAborted:
      return "hold_balloon_aborted";
    case ExplanationCode::kBalloonCompleted:
      return "balloon_completed";
    case ExplanationCode::kHoldDemandSteady:
      return "hold_demand_steady";
    case ExplanationCode::kHoldDownPatience:
      return "hold_down_patience";
    case ExplanationCode::kHoldMemoryUnvalidated:
      return "hold_memory_unvalidated";
    case ExplanationCode::kScaleDownDemand:
      return "scale_down_demand";
    case ExplanationCode::kScaleDownMemoryReclaimable:
      return "scale_down_memory_reclaimable";
    case ExplanationCode::kScaleDownLatencySlack:
      return "scale_down_latency_slack";
    case ExplanationCode::kScaleDownForcedByBudget:
      return "scale_down_forced_by_budget";
    case ExplanationCode::kHoldResizePending:
      return "hold_resize_pending";
    case ExplanationCode::kHoldResizeBackoff:
      return "hold_resize_backoff";
    case ExplanationCode::kScaleRetryResize:
      return "scale_retry_resize";
    case ExplanationCode::kHoldResizeRejected:
      return "hold_resize_rejected";
    case ExplanationCode::kHoldResizeAbandoned:
      return "hold_resize_abandoned";
    case ExplanationCode::kHoldDegradedTelemetry:
      return "hold_degraded_telemetry";
    case ExplanationCode::kRuleSevereBottleneck:
      return "rule_severe_bottleneck";
    case ExplanationCode::kRuleHighUtilHighWait:
      return "rule_high_util_high_wait";
    case ExplanationCode::kRuleHighUtilHighWaitTrend:
      return "rule_high_util_high_wait_trend";
    case ExplanationCode::kRuleHighUtilMedWaitTrend:
      return "rule_high_util_med_wait_trend";
    case ExplanationCode::kRuleHighUtilCorrelation:
      return "rule_high_util_correlation";
    case ExplanationCode::kRuleWaitLedDemand:
      return "rule_wait_led_demand";
    case ExplanationCode::kRuleIdle:
      return "rule_idle";
    case ExplanationCode::kRuleLowUtilLowWait:
      return "rule_low_util_low_wait";
    case ExplanationCode::kRuleUtilOnlyExtreme:
      return "rule_util_only_extreme";
    case ExplanationCode::kRuleUtilOnlyHigh:
      return "rule_util_only_high";
    case ExplanationCode::kRuleUtilOnlyLow:
      return "rule_util_only_low";
    case ExplanationCode::kBaselineStatic:
      return "baseline_static";
    case ExplanationCode::kBaselineTraceSchedule:
      return "baseline_trace_schedule";
    case ExplanationCode::kUtilHold:
      return "util_hold";
    case ExplanationCode::kUtilWarmup:
      return "util_warmup";
    case ExplanationCode::kUtilScaleUp:
      return "util_scale_up";
    case ExplanationCode::kUtilAtMaxContainer:
      return "util_at_max_container";
    case ExplanationCode::kUtilScaleDown:
      return "util_scale_down";
    case ExplanationCode::kUtilDownCooldown:
      return "util_down_cooldown";
    case ExplanationCode::kHoldMigrationPending:
      return "hold_migration_pending";
    case ExplanationCode::kScaleTriggersMigration:
      return "scale_triggers_migration";
    case ExplanationCode::kHoldHostSaturated:
      return "hold_host_saturated";
    case ExplanationCode::kScaleDiagonalUp:
      return "scale_diagonal_up";
    case ExplanationCode::kScaleDiagonalDown:
      return "scale_diagonal_down";
    case ExplanationCode::kScaleDiagonalRebalance:
      return "scale_diagonal_rebalance";
    case ExplanationCode::kHoldBudgetBindingDimension:
      return "hold_budget_binding_dimension";
  }
  return "unknown";
}

std::string Explanation::ToString() const {
  switch (code) {
    case ExplanationCode::kUnset:
      return "(no explanation)";
    case ExplanationCode::kNote:
      return detail;

    case ExplanationCode::kHoldWarmup:
      return "Hold: warming up (insufficient telemetry)";
    case ExplanationCode::kHoldUpCooldown:
      return "Hold: recent scale-up still taking effect (cooldown)";
    case ExplanationCode::kHoldNoAffordableContainer:
      return "Hold: scale-up needed but no container fits the available "
             "budget";
    case ExplanationCode::kHoldNoLargerAffordable:
      return StrFormat(
          "Hold: demand high (%s) but no larger affordable container",
          detail.c_str());
    case ExplanationCode::kScaleUpBudgetConstrained:
      return StrFormat(
          "Scale-up constrained by budget: wanted %s (%.1f) but budget "
          "allows %.1f",
          detail.c_str(), args[0], args[1]);
    case ExplanationCode::kScaleUpDemand:
      return detail;
    case ExplanationCode::kHoldLatencyNotResource:
      return StrFormat(
          "Hold: latency above goal but no resource demand (%s) — scaling "
          "would not help",
          detail.c_str());
    case ExplanationCode::kHoldBalloonRevert:
      return "Hold: demand returned during balloon — reverting memory";
    case ExplanationCode::kHoldGoalMetSavings:
      return StrFormat(
          "Hold: demand high (%s) but latency goal met — holding for cost",
          detail.c_str());
    case ExplanationCode::kHoldBalloonShrinking:
      return StrFormat("Hold: balloon shrinking to %.0f MB (target %.0f)",
                       args[0], args[1]);
    case ExplanationCode::kHoldBalloonAborted:
      return StrFormat(
          "Hold: balloon aborted at %.0f MB: reads %.0f/s vs baseline "
          "%.0f/s",
          args[0], args[1], args[2]);
    case ExplanationCode::kBalloonCompleted:
      return StrFormat("balloon reached %.0f MB with no I/O increase",
                       args[0]);
    case ExplanationCode::kHoldDemandSteady:
      return "Hold: demand steady";
    case ExplanationCode::kHoldDownPatience:
      return StrFormat(
          "Hold: demand low (%d/%d intervals before scale-down)",
          static_cast<int>(args[0]), static_cast<int>(args[1]));
    case ExplanationCode::kHoldMemoryUnvalidated:
      return "Hold: demand low but memory shrink not yet validated";
    case ExplanationCode::kScaleDownDemand:
      return StrFormat("Scale-down: %s", detail.c_str());
    case ExplanationCode::kScaleDownMemoryReclaimable:
      return StrFormat("Scale-down: memory reclaimable; %s",
                       detail.c_str());
    case ExplanationCode::kScaleDownLatencySlack:
      return StrFormat(
          "Scale-down: latency %.0fms well within goal %.0fms — smaller "
          "container suffices",
          args[0], args[1]);
    case ExplanationCode::kScaleDownForcedByBudget:
      return StrFormat(
          "Scale-down forced by budget: %.1f/interval available (%s)",
          args[0], detail.c_str());
    case ExplanationCode::kHoldResizePending:
      return StrFormat("Hold: resize in flight (attempt %d)",
                       static_cast<int>(args[0]));
    case ExplanationCode::kHoldResizeBackoff:
      return StrFormat(
          "Hold: resize attempt %d failed — backing off %d intervals "
          "before retry",
          static_cast<int>(args[0]), static_cast<int>(args[1]));
    case ExplanationCode::kScaleRetryResize:
      return StrFormat("Retry resize to %s (attempt %d)", detail.c_str(),
                       static_cast<int>(args[0]));
    case ExplanationCode::kHoldResizeRejected:
      return StrFormat(
          "Hold: resize to %s rejected by the service — cooling down %d "
          "intervals",
          detail.c_str(), static_cast<int>(args[0]));
    case ExplanationCode::kHoldResizeAbandoned:
      return StrFormat(
          "Hold: resize abandoned after %d failed attempts",
          static_cast<int>(args[0]));
    case ExplanationCode::kHoldDegradedTelemetry:
      return StrFormat(
          "Hold: telemetry degraded (window %.0f%% complete) — demand "
          "forced to 0",
          args[0]);

    case ExplanationCode::kRuleSevereBottleneck:
      return StrFormat(
          "Scale-up by 2: severe %s bottleneck (extreme utilization and "
          "waits)",
          ResourceName(*this));
    case ExplanationCode::kRuleHighUtilHighWait:
      return StrFormat(
          "Scale-up: %s bottleneck (high utilization and waits)",
          ResourceName(*this));
    case ExplanationCode::kRuleHighUtilHighWaitTrend:
      return StrFormat(
          "Scale-up: %s pressure rising (high utilization/waits trending "
          "up)",
          ResourceName(*this));
    case ExplanationCode::kRuleHighUtilMedWaitTrend:
      return StrFormat(
          "Scale-up: %s demand growing (medium waits, significant share, "
          "trending up)",
          ResourceName(*this));
    case ExplanationCode::kRuleHighUtilCorrelation:
      return StrFormat("Scale-up: %s waits correlate with latency",
                       ResourceName(*this));
    case ExplanationCode::kRuleWaitLedDemand:
      return StrFormat("Scale-up: %s waits high and correlated with latency",
                       ResourceName(*this));
    case ExplanationCode::kRuleIdle:
      return StrFormat("Scale-down by 2: %s essentially idle",
                       ResourceName(*this));
    case ExplanationCode::kRuleLowUtilLowWait:
      return StrFormat("Scale-down: %s utilization and waits low",
                       ResourceName(*this));
    case ExplanationCode::kRuleUtilOnlyExtreme:
      return StrFormat("Scale-up: %s utilization extremely high",
                       ResourceName(*this));
    case ExplanationCode::kRuleUtilOnlyHigh:
      return StrFormat("Scale-up: %s utilization high", ResourceName(*this));
    case ExplanationCode::kRuleUtilOnlyLow:
      return StrFormat("Scale-down: %s utilization low",
                       ResourceName(*this));

    case ExplanationCode::kBaselineStatic:
      return "static container";
    case ExplanationCode::kBaselineTraceSchedule:
      return "trace schedule";
    case ExplanationCode::kUtilHold:
      return "hold";
    case ExplanationCode::kUtilWarmup:
      return "warming up";
    case ExplanationCode::kUtilScaleUp:
      return StrFormat(
          "Scale-up: latency %.0fms over goal %.0fms with utilization "
          "%.0f%%",
          args[0], args[1], args[2]);
    case ExplanationCode::kUtilAtMaxContainer:
      return "latency bad but already at the largest container";
    case ExplanationCode::kUtilScaleDown:
      return StrFormat(
          "Scale-down: latency %.0fms within goal and utilization low",
          args[0]);
    case ExplanationCode::kUtilDownCooldown:
      return "cooldown before scale-down";

    case ExplanationCode::kHoldMigrationPending:
      return StrFormat(
          "Hold: migration in flight (attempt %d, %d downtime intervals so "
          "far)",
          static_cast<int>(args[0]), static_cast<int>(args[1]));
    case ExplanationCode::kScaleTriggersMigration:
      return StrFormat(
          "Scale-up to %s does not fit on the current host — migrating "
          "(target rung %d)",
          detail.c_str(), static_cast<int>(args[0]));
    case ExplanationCode::kHoldHostSaturated:
      return StrFormat(
          "Hold: no host has capacity for %s — cooling down %d intervals",
          detail.c_str(), static_cast<int>(args[0]));

    case ExplanationCode::kScaleDiagonalUp:
      return StrFormat(
          "Diagonal scale-up: %s (%.1f -> %.1f units/interval)",
          detail.c_str(), args[1], args[0]);
    case ExplanationCode::kScaleDiagonalDown:
      return StrFormat(
          "Diagonal scale-down: %s (%.1f -> %.1f units/interval)",
          detail.c_str(), args[1], args[0]);
    case ExplanationCode::kScaleDiagonalRebalance:
      return StrFormat(
          "Diagonal rebalance to %s: %d dimension(s) up, %d down",
          detail.c_str(), static_cast<int>(args[0]),
          static_cast<int>(args[1]));
    case ExplanationCode::kHoldBudgetBindingDimension:
      return StrFormat(
          "Hold: budget %.1f binds on %s (%d grid step(s) short of demand)",
          args[1], ResourceName(*this), static_cast<int>(args[0]));
  }
  return "(no explanation)";
}

obs::MetricId RegisterDecisionCounters(obs::MetricRegistry* registry) {
  obs::MetricId base = 0;
  for (size_t c = 0; c < kNumExplanationCodes; ++c) {
    const std::string name =
        StrFormat("dbscale_decisions_total{code=\"%s\"}",
                  ExplanationCodeToken(static_cast<ExplanationCode>(c)));
    const obs::MetricId id = registry->Counter(
        name, "Scaling decisions by explanation code");
    if (c == 0) {
      base = id;
    } else {
      // The per-code counter block must stay contiguous so recording is
      // base + code; interleaved registration would break that.
      DBSCALE_CHECK(id == base + static_cast<obs::MetricId>(c));
    }
  }
  return base;
}

}  // namespace dbscale::scaler
