#include "src/scaler/autoscaler.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/telemetry/wait_class.h"

namespace dbscale::scaler {

using container::ContainerSpec;
using container::ResourceKind;
using container::ResourceVector;

Result<std::unique_ptr<AutoScaler>> AutoScaler::Create(
    const container::Catalog& catalog, const TenantKnobs& knobs,
    const AutoScalerOptions& options) {
  DBSCALE_RETURN_IF_ERROR(knobs.Validate());
  DBSCALE_RETURN_IF_ERROR(options.thresholds.Validate());
  std::unique_ptr<BudgetManager> budget;
  if (knobs.budget.has_value()) {
    BudgetManagerOptions bm;
    bm.total_budget = knobs.budget->total_budget;
    bm.num_intervals = knobs.budget->num_intervals;
    bm.min_cost = catalog.smallest().price_per_interval;
    bm.max_cost = catalog.largest().price_per_interval;
    bm.strategy = options.budget_strategy;
    bm.conservative_k = options.budget_conservative_k;
    DBSCALE_ASSIGN_OR_RETURN(BudgetManager manager,
                             BudgetManager::Create(bm));
    budget = std::make_unique<BudgetManager>(std::move(manager));
  }
  return std::unique_ptr<AutoScaler>(
      new AutoScaler(catalog, knobs, options, std::move(budget)));
}

AutoScaler::AutoScaler(const container::Catalog& catalog,
                       const TenantKnobs& knobs,
                       const AutoScalerOptions& options,
                       std::unique_ptr<BudgetManager> budget)
    : catalog_(catalog),
      knobs_(knobs),
      options_(options),
      estimator_(options.estimator),
      budget_(std::move(budget)),
      balloon_(options.balloon) {}

int AutoScaler::DownPatience() const {
  switch (knobs_.sensitivity) {
    case Sensitivity::kHigh:
      return options_.down_patience_high;
    case Sensitivity::kMedium:
      return options_.down_patience_medium;
    case Sensitivity::kLow:
      return options_.down_patience_low;
  }
  return options_.down_patience_medium;
}

double AutoScaler::AvailableBudget() const {
  return budget_ ? budget_->available()
                 : std::numeric_limits<double>::infinity();
}

ScalingDecision AutoScaler::HoldCurrent(const PolicyInput& input,
                                        std::string explanation) const {
  ScalingDecision d;
  d.target = input.current;
  d.explanation = std::move(explanation);
  return d;
}

std::string AutoScaler::DominantWaitNote(
    const telemetry::SignalSnapshot& signals) {
  telemetry::WaitClass dominant = telemetry::WaitClass::kSystem;
  double best = -1.0;
  for (telemetry::WaitClass wc : telemetry::kAllWaitClasses) {
    const double pct = signals.wait_pct_by_class[static_cast<size_t>(wc)];
    if (pct > best) {
      best = pct;
      dominant = wc;
    }
  }
  if (best <= 0.0) return "no waits observed";
  return StrFormat("dominant waits: %s %.0f%%",
                   telemetry::WaitClassToString(dominant), best);
}

void AutoScaler::OnIntervalCharged(double cost) {
  if (!budget_) return;
  const Status status = budget_->ChargeAndRefill(cost);
  if (!status.ok()) {
    // Decide() sizes within available(); a failure here is a harness bug.
    DBSCALE_LOG(kError) << "budget charge failed: " << status.ToString();
  }
}

ScalingDecision AutoScaler::Decide(const PolicyInput& input) {
  ScalingDecision d = DecideUnclamped(input);
  const double budget = AvailableBudget();
  if (d.target.price_per_interval > budget) {
    // The budget is a hard constraint: even "hold" must fit the interval's
    // tokens. Downsize to the most expensive affordable container.
    auto affordable = catalog_.MostExpensiveWithin(budget);
    if (affordable.ok()) {
      d.target = *affordable;
      d.explanation = StrFormat(
          "Scale-down forced by budget: %.1f/interval available (%s)",
          budget, d.explanation.c_str());
      balloon_.Reset();
      memory_low_confirmed_ = false;
      low_streak_ = 0;
    }
    // No affordable container at all would mean Create() admitted an
    // infeasible budget; keep the current container in that case.
  }
  audit_.Record(input, last_cats_, last_estimate_, d);
  return d;
}

ScalingDecision AutoScaler::DecideUnclamped(const PolicyInput& input) {
  const telemetry::SignalSnapshot& signals = input.signals;
  if (!signals.valid) {
    return HoldCurrent(input, "Hold: warming up (insufficient telemetry)");
  }

  last_cats_ = Categorize(signals, options_.thresholds, knobs_.latency_goal,
                          options_.categorize);
  last_estimate_ = estimator_.Estimate(last_cats_);
  const CategorizedSignals& cats = last_cats_;
  const DemandEstimate& est = last_estimate_;

  const bool has_goal = knobs_.latency_goal.has_value();
  const bool latency_bad =
      has_goal && cats.latency == LatencyCategory::kBad;
  const bool degrading = has_goal && cats.latency_degrading;
  bad_streak_ = latency_bad ? bad_streak_ + 1 : 0;

  const int cur_rung = input.current.base_rung;

  // -------- Scale-up path --------
  bool perf_trigger = false;
  if (!has_goal) {
    // No latency goal: scale purely on demand (Section 2.3).
    perf_trigger = true;
  } else if (knobs_.sensitivity == Sensitivity::kLow) {
    // LOW sensitivity: slow to scale up — require persistent violations,
    // and ignore mere degradation trends.
    perf_trigger =
        latency_bad && bad_streak_ >= options_.up_patience_low_sensitivity;
  } else {
    perf_trigger = latency_bad || degrading;
  }

  const bool in_up_cooldown =
      input.interval_index - last_up_interval_ <
      options_.up_cooldown_intervals;
  if (perf_trigger && est.AnyIncrease() && in_up_cooldown) {
    low_streak_ = 0;
    return HoldCurrent(
        input, "Hold: recent scale-up still taking effect (cooldown)");
  }

  if (perf_trigger && est.AnyIncrease()) {
    low_streak_ = 0;
    std::optional<double> memory_restore;
    if (balloon_.active()) {
      // Demand returned mid-balloon: cancel and restore the allocation.
      balloon_.Reset();
      memory_restore = input.current.resources.memory_mb;
    }
    memory_low_confirmed_ = false;

    ResourceVector desired = input.current.resources;
    for (ResourceKind kind : container::kAllResources) {
      const int steps = est.For(kind).steps;
      if (steps > 0) {
        const int rung = catalog_.ClampRung(cur_rung + steps);
        desired.Set(kind, catalog_.rung(rung).resources.Get(kind));
      }
    }

    auto within_budget =
        catalog_.CheapestDominating(desired, AvailableBudget());
    if (!within_budget.ok()) {
      ScalingDecision d = HoldCurrent(
          input, "Hold: scale-up needed but no container fits the "
                 "available budget");
      d.memory_limit_mb = memory_restore;
      return d;
    }
    const ContainerSpec unconstrained = catalog_.CheapestDominating(desired);

    ScalingDecision d;
    d.target = *within_budget;
    d.memory_limit_mb = memory_restore;
    if (d.target.id != input.current.id) {
      last_up_interval_ = input.interval_index;
    }
    if (d.target.id == input.current.id) {
      d.explanation = StrFormat(
          "Hold: demand high (%s) but no larger affordable container",
          est.SummaryIncrease().c_str());
    } else if (within_budget->id != unconstrained.id) {
      d.explanation = StrFormat(
          "Scale-up constrained by budget: wanted %s (%.1f) but budget "
          "allows %.1f",
          unconstrained.name.c_str(), unconstrained.price_per_interval,
          AvailableBudget());
    } else {
      d.explanation = est.SummaryIncrease();
    }
    return d;
  }

  if (latency_bad || degrading) {
    // Latency violated without resource demand: more resources will not
    // help (poor application code, lock contention, ...). Do not scale
    // (Section 2.3: latency goals are a knob, not a guarantee).
    low_streak_ = 0;
    return HoldCurrent(
        input,
        StrFormat("Hold: latency above goal but no resource demand (%s) — "
                  "scaling would not help",
                  DominantWaitNote(signals).c_str()));
  }

  if (has_goal && est.AnyIncrease()) {
    // Latency goal met: convert slack into savings by not chasing demand.
    low_streak_ = 0;
    if (balloon_.active()) {
      balloon_.Reset();
      ScalingDecision d = HoldCurrent(
          input, "Hold: demand returned during balloon — reverting memory");
      d.memory_limit_mb = input.current.resources.memory_mb;
      return d;
    }
    return HoldCurrent(input,
                       StrFormat("Hold: demand high (%s) but latency goal "
                                 "met — holding for cost",
                                 est.SummaryIncrease().c_str()));
  }

  // -------- Balloon progression --------
  if (balloon_.active()) {
    BalloonController::Advice advice =
        balloon_.Tick(signals.physical_reads_per_sec, input.interval_index);
    if (advice.completed) {
      memory_low_confirmed_ = true;
      // Fall through: the scale-down path can now shrink memory.
    } else {
      ScalingDecision d = HoldCurrent(
          input, StrFormat("Hold: %s", advice.note.c_str()));
      d.memory_limit_mb = advice.memory_limit_mb;
      return d;
    }
  }

  // -------- Scale-down path --------
  // Latency slack (Section 2.3): when the goal is comfortably met, a
  // smaller container may still meet it — try one rung down even when the
  // estimator sees demand that is merely "not high".
  const bool slack_low =
      has_goal && options_.down_latency_slack_ratio > 0.0 &&
      signals.latency_ms <= options_.down_latency_slack_ratio *
                                knobs_.latency_goal->target_ms;
  const bool demand_low =
      est.SuggestsShrink() || memory_low_confirmed_ || slack_low;
  if (!demand_low) {
    low_streak_ = 0;
    return HoldCurrent(input, "Hold: demand steady");
  }
  ++low_streak_;
  if (low_streak_ < DownPatience()) {
    return HoldCurrent(
        input, StrFormat("Hold: demand low (%d/%d intervals before "
                         "scale-down)",
                         low_streak_, DownPatience()));
  }

  ResourceVector desired = input.current.resources;
  for (ResourceKind kind : container::kAllResources) {
    if (kind == ResourceKind::kMemory) continue;
    int target_rung = cur_rung + std::min(est.For(kind).steps, 0);
    if (slack_low) target_rung = std::min(target_rung, cur_rung - 1);
    target_rung = catalog_.ClampRung(target_rung);
    // Saturation guard: raise the target rung until the dimension's
    // current usage fits under the guard utilization.
    const double usage = signals.resource(kind).utilization_pct / 100.0 *
                         input.current.resources.Get(kind);
    while (target_rung < cur_rung) {
      const double alloc = catalog_.rung(target_rung).resources.Get(kind);
      if (alloc <= 0.0 ||
          100.0 * usage / alloc <= options_.down_projected_util_guard_pct) {
        break;
      }
      ++target_rung;
    }
    if (target_rung < cur_rung) {
      desired.Set(kind, catalog_.rung(target_rung).resources.Get(kind));
    }
  }
  // Memory shrinks one rung at a time, and (with ballooning enabled) only
  // after a balloon pass confirmed the working set survives it.
  const bool memory_may_shrink =
      memory_low_confirmed_ || !options_.enable_ballooning;
  if (memory_may_shrink && cur_rung > 0) {
    desired.Set(ResourceKind::kMemory,
                catalog_.rung(cur_rung - 1).resources.memory_mb);
  }

  auto chosen = catalog_.CheapestDominating(desired, AvailableBudget());
  if (chosen.ok() && chosen->price_per_interval <
                         input.current.price_per_interval) {
    const bool memory_was_confirmed = memory_low_confirmed_;
    low_streak_ = 0;
    memory_low_confirmed_ = false;
    balloon_.Reset();
    ScalingDecision d;
    d.target = *chosen;
    if (est.AnyDecrease() || memory_was_confirmed) {
      d.explanation = StrFormat(
          "Scale-down: %s%s",
          memory_was_confirmed ? "memory reclaimable; " : "",
          est.SummaryDecrease().c_str());
    } else {
      d.explanation = StrFormat(
          "Scale-down: latency %.0fms well within goal %.0fms — smaller "
          "container suffices",
          signals.latency_ms, knobs_.latency_goal->target_ms);
    }
    return d;
  }

  // A cheaper container is blocked by memory: validate low memory demand
  // with a balloon pass before touching it. (If a pass already confirmed
  // low memory demand, the shrink is merely waiting on the other
  // dimensions — do not balloon again.)
  if (options_.enable_ballooning && cur_rung > 0 &&
      !memory_low_confirmed_ && balloon_.CanStart(input.interval_index)) {
    const double target_mb =
        catalog_.rung(cur_rung - 1).resources.memory_mb;
    const double start_mb = input.current.resources.memory_mb;
    if (target_mb < start_mb) {
      // Margin scaled to the container's disk capacity: cold-page churn on
      // a large container is not a meaningful I/O increase.
      const double margin = std::max(
          options_.balloon.io_abort_margin_rps,
          0.05 * input.current.resources.disk_iops);
      const Status started =
          balloon_.Start(start_mb, target_mb,
                         signals.physical_reads_per_sec,
                         input.interval_index, margin);
      if (started.ok()) {
        BalloonController::Advice advice = balloon_.Tick(
            signals.physical_reads_per_sec, input.interval_index);
        ScalingDecision d = HoldCurrent(
            input,
            StrFormat("Hold: %s", advice.note.c_str()));
        d.memory_limit_mb = advice.memory_limit_mb;
        return d;
      }
    }
  }
  return HoldCurrent(input,
                     "Hold: demand low but memory shrink not yet validated");
}

}  // namespace dbscale::scaler
