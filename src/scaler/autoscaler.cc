#include "src/scaler/autoscaler.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/telemetry/wait_class.h"

namespace dbscale::scaler {

using container::ContainerSpec;
using container::ResourceKind;
using container::ResourceVector;

Result<std::unique_ptr<AutoScaler>> AutoScaler::Create(
    const container::Catalog& catalog, const TenantKnobs& knobs,
    const AutoScalerOptions& options) {
  DBSCALE_RETURN_IF_ERROR(knobs.Validate());
  DBSCALE_RETURN_IF_ERROR(options.thresholds.Validate());
  if (options.resize_max_attempts < 1) {
    return Status::InvalidArgument("resize_max_attempts must be >= 1");
  }
  if (options.resize_backoff_base_intervals < 1 ||
      options.resize_backoff_multiplier < 1.0 ||
      options.resize_backoff_max_intervals <
          options.resize_backoff_base_intervals) {
    return Status::InvalidArgument("invalid resize backoff options");
  }
  if (options.resize_rejection_cooldown_intervals < 0) {
    return Status::InvalidArgument(
        "resize_rejection_cooldown_intervals must be >= 0");
  }
  std::unique_ptr<BudgetManager> budget;
  if (knobs.budget.has_value()) {
    BudgetManagerOptions bm;
    bm.total_budget = knobs.budget->total_budget;
    bm.num_intervals = knobs.budget->num_intervals;
    bm.min_cost = catalog.smallest().price_per_interval;
    bm.max_cost = catalog.largest().price_per_interval;
    bm.strategy = options.budget_strategy;
    bm.conservative_k = options.budget_conservative_k;
    DBSCALE_ASSIGN_OR_RETURN(BudgetManager manager,
                             BudgetManager::Create(bm));
    budget = std::make_unique<BudgetManager>(std::move(manager));
  }
  return std::unique_ptr<AutoScaler>(
      new AutoScaler(catalog, knobs, options, std::move(budget)));
}

AutoScaler::AutoScaler(const container::Catalog& catalog,
                       const TenantKnobs& knobs,
                       const AutoScalerOptions& options,
                       std::unique_ptr<BudgetManager> budget)
    : catalog_(catalog),
      knobs_(knobs),
      options_(options),
      estimator_(options.estimator),
      budget_(std::move(budget)),
      balloon_(options.balloon) {}

int AutoScaler::DownPatience() const {
  switch (knobs_.sensitivity) {
    case Sensitivity::kHigh:
      return options_.down_patience_high;
    case Sensitivity::kMedium:
      return options_.down_patience_medium;
    case Sensitivity::kLow:
      return options_.down_patience_low;
  }
  return options_.down_patience_medium;
}

double AutoScaler::AvailableBudget() const {
  return budget_ ? budget_->available()
                 : std::numeric_limits<double>::infinity();
}

ScalingDecision AutoScaler::HoldCurrent(const PolicyInput& input,
                                        Explanation explanation) const {
  ScalingDecision d;
  d.target = input.current;
  d.explanation = std::move(explanation);
  return d;
}

std::string AutoScaler::DominantWaitNote(
    const telemetry::SignalSnapshot& signals) {
  telemetry::WaitClass dominant = telemetry::WaitClass::kSystem;
  double best = -1.0;
  for (telemetry::WaitClass wc : telemetry::kAllWaitClasses) {
    const double pct = signals.wait_pct_by_class[static_cast<size_t>(wc)];
    if (pct > best) {
      best = pct;
      dominant = wc;
    }
  }
  if (best <= 0.0) return "no waits observed";
  return StrFormat("dominant waits: %s %.0f%%",
                   telemetry::WaitClassToString(dominant), best);
}

void AutoScaler::RecordBalloonAdvice(const BalloonController::Advice& advice,
                                     obs::SpanId span,
                                     const PolicyInput& input) {
  const obs::Sink& sink = input.obs;
  sink.trace.AttrStr(span, "outcome",
                     advice.aborted      ? "aborted"
                     : advice.completed  ? "completed"
                                         : "shrinking");
  if (advice.memory_limit_mb.has_value()) {
    sink.trace.Attr(span, "limit_mb", *advice.memory_limit_mb);
  }
  sink.trace.End(span, input.now);
  if (sink.pipeline != nullptr) {
    sink.metrics.Add(sink.pipeline->balloon_ticks_total, 1.0);
    if (advice.aborted) {
      sink.metrics.Add(sink.pipeline->balloon_aborts_total, 1.0);
    }
    if (advice.completed) {
      sink.metrics.Add(sink.pipeline->balloon_completions_total, 1.0);
    }
  }
}

ScalingDecision AutoScaler::Decide(const PolicyInput& input) {
  if (budget_ && input.charged_cost > 0.0) {
    // The price of the interval that just ended arrives with the decision
    // cycle; Decide() sizes within available(), so a failed charge is a
    // harness bug.
    const Status status = budget_->ChargeAndRefill(input.charged_cost);
    if (!status.ok()) {
      DBSCALE_LOG(kError) << "budget charge failed: " << status.ToString();
    }
  }

  decision_attempt_ = 1;
  ScalingDecision d = DecideUnclamped(input);

  const obs::Sink& sink = input.obs;
  const obs::SpanId budget_span = sink.trace.Start("budget_check", input.now);
  const double budget = AvailableBudget();
  bool clamped = false;
  if (d.target.price_per_interval > budget) {
    // The budget is a hard constraint: even "hold" must fit the interval's
    // tokens. Downsize to the most expensive affordable container.
    auto affordable = catalog_.MostExpensiveWithin(budget);
    if (affordable.ok()) {
      d.target = *affordable;
      Explanation forced(ExplanationCode::kScaleDownForcedByBudget, budget);
      forced.detail = d.explanation.ToString();
      d.explanation = std::move(forced);
      balloon_.Reset();
      memory_low_confirmed_ = false;
      low_streak_ = 0;
      clamped = true;
    }
    // No affordable container at all would mean Create() admitted an
    // infeasible budget; keep the current container in that case.
  }
  if (budget_) sink.trace.Attr(budget_span, "available", budget);
  sink.trace.Attr(budget_span, "price", d.target.price_per_interval);
  sink.trace.Attr(budget_span, "clamped", clamped ? 1.0 : 0.0);
  sink.trace.End(budget_span, input.now);
  if (sink.pipeline != nullptr && budget_ != nullptr) {
    sink.metrics.Set(sink.pipeline->budget_available, budget_->available());
    sink.metrics.Set(sink.pipeline->budget_spent, budget_->spent());
    if (clamped) sink.metrics.Add(sink.pipeline->budget_clamps_total, 1.0);
  }

  if (input.placement.present && d.target.id != input.current.id &&
      d.target.price_per_interval > input.current.price_per_interval) {
    // With a host plane attached, a scale-up whose resource delta exceeds
    // the host's headroom will be actuated as a migration. The target
    // stands — placement is the harness's job — but the explanation says
    // what the tenant is in for (copy latency + blackout).
    bool fits_locally = true;
    for (const auto kind : container::kAllResources) {
      const double delta = d.target.resources.Get(kind) -
                           input.current.resources.Get(kind);
      if (delta > input.placement.free.Get(kind)) {
        fits_locally = false;
        break;
      }
    }
    if (!fits_locally) {
      Explanation e(ExplanationCode::kScaleTriggersMigration, d.target.name);
      e.args[0] = static_cast<double>(d.target.base_rung);
      d.explanation = std::move(e);
    }
  }

  audit_.Record(input, last_cats_, last_estimate_, d, decision_attempt_);
  return d;
}

int AutoScaler::BackoffIntervals(int failed_attempts) const {
  double intervals =
      static_cast<double>(options_.resize_backoff_base_intervals);
  for (int i = 1; i < failed_attempts; ++i) {
    intervals *= options_.resize_backoff_multiplier;
  }
  intervals = std::min(
      intervals,
      static_cast<double>(options_.resize_backoff_max_intervals));
  return std::max(1, static_cast<int>(intervals));
}

std::optional<ScalingDecision> AutoScaler::HandleActuationFeedback(
    const PolicyInput& input) {
  const ActuationFeedback& fb = input.actuation;
  const bool migration = fb.kind == ActuationKind::kMigration;
  switch (fb.phase) {
    case ActuationPhase::kNone:
      break;
    case ActuationPhase::kApplied:
      retry_.reset();
      audit_.NoteResizeOutcome(ResizeOutcome::kApplied, fb.attempt);
      break;  // The normal decision cycle proceeds from the new container.
    case ActuationPhase::kPending:
      // One actuation channel: never issue another request while one is in
      // flight. A pending migration gets its own code so tenants (and the
      // per-code counters) see the copy + blackout, not a generic resize.
      if (migration) {
        return HoldCurrent(
            input, Explanation(ExplanationCode::kHoldMigrationPending,
                               static_cast<double>(fb.attempt),
                               static_cast<double>(fb.downtime_intervals)));
      }
      return HoldCurrent(input,
                         Explanation(ExplanationCode::kHoldResizePending,
                                     static_cast<double>(fb.attempt)));
    case ActuationPhase::kRejected: {
      retry_.reset();
      audit_.NoteResizeOutcome(ResizeOutcome::kRejected, fb.attempt);
      rejected_target_id_ = fb.target.id;
      rejected_until_interval_ =
          input.interval_index + options_.resize_rejection_cooldown_intervals;
      // A rejected migration means no host in the fleet had capacity —
      // same cooldown bookkeeping, distinct explanation.
      Explanation e(migration ? ExplanationCode::kHoldHostSaturated
                              : ExplanationCode::kHoldResizeRejected,
                    fb.target.name);
      e.args[0] =
          static_cast<double>(options_.resize_rejection_cooldown_intervals);
      return HoldCurrent(input, std::move(e));
    }
    case ActuationPhase::kFailed: {
      // A failed resize aborts ballooning mid-flight: the memory override
      // was staged toward a container that will not arrive.
      std::optional<double> memory_restore;
      if (balloon_.active()) {
        balloon_.Reset();
        memory_restore = input.current.resources.memory_mb;
      }
      memory_low_confirmed_ = false;
      if (fb.attempt >= options_.resize_max_attempts) {
        retry_.reset();
        audit_.NoteResizeOutcome(ResizeOutcome::kAbandoned, fb.attempt);
        ScalingDecision d = HoldCurrent(
            input, Explanation(ExplanationCode::kHoldResizeAbandoned,
                               static_cast<double>(fb.attempt)));
        d.memory_limit_mb = memory_restore;
        return d;
      }
      audit_.NoteResizeOutcome(ResizeOutcome::kFailed, fb.attempt);
      const int backoff = BackoffIntervals(fb.attempt);
      retry_ = RetryPlan{fb.target, fb.attempt,
                         input.interval_index + backoff};
      ScalingDecision d = HoldCurrent(
          input, Explanation(ExplanationCode::kHoldResizeBackoff,
                             static_cast<double>(fb.attempt),
                             static_cast<double>(backoff)));
      d.memory_limit_mb = memory_restore;
      return d;
    }
  }

  if (retry_.has_value()) {
    if (input.interval_index < retry_->retry_at_interval) {
      return HoldCurrent(
          input,
          Explanation(ExplanationCode::kHoldResizeBackoff,
                      static_cast<double>(retry_->failed_attempts),
                      static_cast<double>(retry_->retry_at_interval -
                                          input.interval_index)));
    }
    const RetryPlan plan = *retry_;
    retry_.reset();
    const int attempt = plan.failed_attempts + 1;
    const obs::Sink& sink = input.obs;
    const obs::SpanId retry_span = sink.trace.Start("decide.retry", input.now);
    sink.trace.Attr(retry_span, "attempt", attempt);
    sink.trace.Attr(retry_span, "target_rung", plan.target.base_rung);
    sink.trace.End(retry_span, input.now);
    if (sink.pipeline != nullptr) {
      sink.metrics.Add(sink.pipeline->resize_retries_total, 1.0);
    }
    decision_attempt_ = attempt;
    ScalingDecision d;
    d.target = plan.target;
    d.explanation =
        Explanation(ExplanationCode::kScaleRetryResize, plan.target.name);
    d.explanation.args[0] = static_cast<double>(attempt);
    return d;
  }
  return std::nullopt;
}

ScalingDecision AutoScaler::DecideUnclamped(const PolicyInput& input) {
  const telemetry::SignalSnapshot& signals = input.signals;
  const obs::Sink& sink = input.obs;
  // Actuation-lifecycle feedback first: an in-flight, backing-off, rejected
  // or abandoned resize/migration preempts the signal-driven cycle.
  if (std::optional<ScalingDecision> d = HandleActuationFeedback(input)) {
    low_streak_ = 0;
    return *std::move(d);
  }
  if (!signals.valid) {
    return HoldCurrent(input,
                       Explanation(ExplanationCode::kHoldWarmup));
  }
  if (signals.degraded) {
    // Graceful degradation: an incomplete telemetry window (dropped or
    // rejected samples) cannot support a demand estimate — force demand to
    // 0 and hold rather than act on partial data.
    low_streak_ = 0;
    bad_streak_ = 0;
    return HoldCurrent(
        input, Explanation(ExplanationCode::kHoldDegradedTelemetry,
                           100.0 * signals.confidence));
  }

  const obs::SpanId cat_span = sink.trace.Start("categorize", input.now);
  last_cats_ = Categorize(signals, options_.thresholds, knobs_.latency_goal,
                          options_.categorize);
  last_estimate_ = estimator_.Estimate(last_cats_);
  sink.trace.AttrStr(cat_span, "latency",
                     LatencyCategoryToString(last_cats_.latency));
  sink.trace.End(cat_span, input.now);
  if (sink.trace.enabled()) {
    // One rule_eval span per resource: which Section 4 rule fired (if any)
    // and the demand steps it implied.
    for (ResourceKind kind : container::kAllResources) {
      const ResourceDemand& rd = last_estimate_.For(kind);
      const obs::SpanId rule_span = sink.trace.Start("rule_eval", input.now);
      sink.trace.AttrStr(rule_span, "resource",
                         container::ResourceKindToString(kind));
      sink.trace.Attr(rule_span, "steps", rd.steps);
      sink.trace.AttrStr(rule_span, "code",
                         ExplanationCodeToken(rd.explanation.code));
      sink.trace.End(rule_span, input.now);
    }
  }
  const CategorizedSignals& cats = last_cats_;
  const DemandEstimate& est = last_estimate_;

  const bool has_goal = knobs_.latency_goal.has_value();
  const bool latency_bad =
      has_goal && cats.latency == LatencyCategory::kBad;
  const bool degrading = has_goal && cats.latency_degrading;
  bad_streak_ = latency_bad ? bad_streak_ + 1 : 0;

  const int cur_rung = input.current.base_rung;

  // -------- Scale-up path --------
  bool perf_trigger = false;
  if (!has_goal) {
    // No latency goal: scale purely on demand (Section 2.3).
    perf_trigger = true;
  } else if (knobs_.sensitivity == Sensitivity::kLow) {
    // LOW sensitivity: slow to scale up — require persistent violations,
    // and ignore mere degradation trends.
    perf_trigger =
        latency_bad && bad_streak_ >= options_.up_patience_low_sensitivity;
  } else {
    perf_trigger = latency_bad || degrading;
  }

  const bool in_up_cooldown =
      input.interval_index - last_up_interval_ <
      options_.up_cooldown_intervals;
  if (perf_trigger && est.AnyIncrease() && in_up_cooldown) {
    low_streak_ = 0;
    return HoldCurrent(input,
                       Explanation(ExplanationCode::kHoldUpCooldown));
  }

  if (perf_trigger && est.AnyIncrease()) {
    low_streak_ = 0;
    std::optional<double> memory_restore;
    if (balloon_.active()) {
      // Demand returned mid-balloon: cancel and restore the allocation.
      balloon_.Reset();
      memory_restore = input.current.resources.memory_mb;
    }
    memory_low_confirmed_ = false;

    ResourceVector desired = input.current.resources;
    for (ResourceKind kind : container::kAllResources) {
      const int steps = est.For(kind).steps;
      if (steps > 0) {
        const int rung = catalog_.ClampRung(cur_rung + steps);
        desired.Set(kind, catalog_.rung(rung).resources.Get(kind));
      }
    }

    auto within_budget =
        catalog_.CheapestDominating(desired, AvailableBudget());
    if (!within_budget.ok()) {
      ScalingDecision d = HoldCurrent(
          input,
          Explanation(ExplanationCode::kHoldNoAffordableContainer));
      d.memory_limit_mb = memory_restore;
      return d;
    }
    const ContainerSpec unconstrained = catalog_.CheapestDominating(desired);

    ScalingDecision d;
    d.target = *within_budget;
    d.demand = desired;
    d.memory_limit_mb = memory_restore;
    if (d.target.id != input.current.id &&
        d.target.id == rejected_target_id_ &&
        input.interval_index < rejected_until_interval_) {
      // The service permanently rejected this target recently; re-requesting
      // it before the cooldown expires would just burn attempts.
      Explanation e(ExplanationCode::kHoldResizeRejected, d.target.name);
      e.args[0] = static_cast<double>(rejected_until_interval_ -
                                      input.interval_index);
      ScalingDecision hold = HoldCurrent(input, std::move(e));
      hold.memory_limit_mb = memory_restore;
      return hold;
    }
    if (d.target.id != input.current.id) {
      last_up_interval_ = input.interval_index;
    }
    if (d.target.id == input.current.id) {
      d.explanation = Explanation(ExplanationCode::kHoldNoLargerAffordable,
                                  est.SummaryIncrease());
    } else if (within_budget->id != unconstrained.id) {
      d.explanation =
          Explanation(ExplanationCode::kScaleUpBudgetConstrained,
                      unconstrained.name);
      d.explanation.args[0] = unconstrained.price_per_interval;
      d.explanation.args[1] = AvailableBudget();
    } else {
      d.explanation = Explanation(ExplanationCode::kScaleUpDemand,
                                  est.SummaryIncrease());
    }
    return d;
  }

  if (latency_bad || degrading) {
    // Latency violated without resource demand: more resources will not
    // help (poor application code, lock contention, ...). Do not scale
    // (Section 2.3: latency goals are a knob, not a guarantee).
    low_streak_ = 0;
    return HoldCurrent(
        input, Explanation(ExplanationCode::kHoldLatencyNotResource,
                           DominantWaitNote(signals)));
  }

  if (has_goal && est.AnyIncrease()) {
    // Latency goal met: convert slack into savings by not chasing demand.
    low_streak_ = 0;
    if (balloon_.active()) {
      balloon_.Reset();
      ScalingDecision d = HoldCurrent(
          input, Explanation(ExplanationCode::kHoldBalloonRevert));
      d.memory_limit_mb = input.current.resources.memory_mb;
      return d;
    }
    return HoldCurrent(input,
                       Explanation(ExplanationCode::kHoldGoalMetSavings,
                                   est.SummaryIncrease()));
  }

  // -------- Balloon progression --------
  if (balloon_.active()) {
    const obs::SpanId balloon_span = sink.trace.Start("balloon", input.now);
    BalloonController::Advice advice =
        balloon_.Tick(signals.physical_reads_per_sec, input.interval_index);
    RecordBalloonAdvice(advice, balloon_span, input);
    if (advice.completed) {
      memory_low_confirmed_ = true;
      // Fall through: the scale-down path can now shrink memory.
    } else {
      ScalingDecision d = HoldCurrent(input, advice.explanation);
      d.memory_limit_mb = advice.memory_limit_mb;
      return d;
    }
  }

  // -------- Scale-down path --------
  // Latency slack (Section 2.3): when the goal is comfortably met, a
  // smaller container may still meet it — try one rung down even when the
  // estimator sees demand that is merely "not high".
  const bool slack_low =
      has_goal && options_.down_latency_slack_ratio > 0.0 &&
      signals.latency_ms <= options_.down_latency_slack_ratio *
                                knobs_.latency_goal->target_ms;
  const bool demand_low =
      est.SuggestsShrink() || memory_low_confirmed_ || slack_low;
  if (!demand_low) {
    low_streak_ = 0;
    return HoldCurrent(input,
                       Explanation(ExplanationCode::kHoldDemandSteady));
  }
  ++low_streak_;
  if (low_streak_ < DownPatience()) {
    return HoldCurrent(
        input,
        Explanation(ExplanationCode::kHoldDownPatience,
                    static_cast<double>(low_streak_),
                    static_cast<double>(DownPatience())));
  }

  ResourceVector desired = input.current.resources;
  for (ResourceKind kind : container::kAllResources) {
    if (kind == ResourceKind::kMemory) continue;
    int target_rung = cur_rung + std::min(est.For(kind).steps, 0);
    if (slack_low) target_rung = std::min(target_rung, cur_rung - 1);
    target_rung = catalog_.ClampRung(target_rung);
    // Saturation guard: raise the target rung until the dimension's
    // current usage fits under the guard utilization.
    const double usage = signals.resource(kind).utilization_pct / 100.0 *
                         input.current.resources.Get(kind);
    while (target_rung < cur_rung) {
      const double alloc = catalog_.rung(target_rung).resources.Get(kind);
      if (alloc <= 0.0 ||
          100.0 * usage / alloc <= options_.down_projected_util_guard_pct) {
        break;
      }
      ++target_rung;
    }
    if (target_rung < cur_rung) {
      desired.Set(kind, catalog_.rung(target_rung).resources.Get(kind));
    }
  }
  // Memory shrinks one rung at a time, and (with ballooning enabled) only
  // after a balloon pass confirmed the working set survives it.
  const bool memory_may_shrink =
      memory_low_confirmed_ || !options_.enable_ballooning;
  if (memory_may_shrink && cur_rung > 0) {
    desired.Set(ResourceKind::kMemory,
                catalog_.rung(cur_rung - 1).resources.memory_mb);
  }

  auto chosen = catalog_.CheapestDominating(desired, AvailableBudget());
  if (chosen.ok() && chosen->id == rejected_target_id_ &&
      input.interval_index < rejected_until_interval_) {
    Explanation e(ExplanationCode::kHoldResizeRejected, chosen->name);
    e.args[0] = static_cast<double>(rejected_until_interval_ -
                                    input.interval_index);
    return HoldCurrent(input, std::move(e));
  }
  if (chosen.ok() && chosen->price_per_interval <
                         input.current.price_per_interval) {
    const bool memory_was_confirmed = memory_low_confirmed_;
    low_streak_ = 0;
    memory_low_confirmed_ = false;
    balloon_.Reset();
    ScalingDecision d;
    d.target = *chosen;
    if (est.AnyDecrease() || memory_was_confirmed) {
      d.explanation = Explanation(
          memory_was_confirmed
              ? ExplanationCode::kScaleDownMemoryReclaimable
              : ExplanationCode::kScaleDownDemand,
          est.SummaryDecrease());
    } else {
      d.explanation =
          Explanation(ExplanationCode::kScaleDownLatencySlack,
                      signals.latency_ms, knobs_.latency_goal->target_ms);
    }
    return d;
  }

  // A cheaper container is blocked by memory: validate low memory demand
  // with a balloon pass before touching it. (If a pass already confirmed
  // low memory demand, the shrink is merely waiting on the other
  // dimensions — do not balloon again.)
  if (options_.enable_ballooning && cur_rung > 0 &&
      !memory_low_confirmed_ && balloon_.CanStart(input.interval_index)) {
    const double target_mb =
        catalog_.rung(cur_rung - 1).resources.memory_mb;
    const double start_mb = input.current.resources.memory_mb;
    if (target_mb < start_mb) {
      // Margin scaled to the container's disk capacity: cold-page churn on
      // a large container is not a meaningful I/O increase.
      const double margin = std::max(
          options_.balloon.io_abort_margin_rps,
          0.05 * input.current.resources.disk_iops);
      const Status started =
          balloon_.Start(start_mb, target_mb,
                         signals.physical_reads_per_sec,
                         input.interval_index, margin);
      if (started.ok()) {
        const obs::SpanId balloon_span =
            sink.trace.Start("balloon", input.now);
        BalloonController::Advice advice = balloon_.Tick(
            signals.physical_reads_per_sec, input.interval_index);
        RecordBalloonAdvice(advice, balloon_span, input);
        ScalingDecision d = HoldCurrent(input, advice.explanation);
        d.memory_limit_mb = advice.memory_limit_mb;
        return d;
      }
    }
  }
  return HoldCurrent(
      input, Explanation(ExplanationCode::kHoldMemoryUnvalidated));
}

}  // namespace dbscale::scaler
