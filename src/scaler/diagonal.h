// Diagonal scaling (PAPERS.md, arxiv 2511.21612): size each resource
// dimension independently instead of walking the lock-step rung ladder.
//
// Where Auto answers "which rung?", the diagonal scaler answers "how much
// CPU, how much memory, how much disk I/O, how much log I/O?" — a
// per-resource demand vector estimated from the same Section 4 signals —
// and then buys the cheapest purchasable bundle that covers the vector
// within the interval's token-bucket budget. On a FlexibleCatalog any grid
// combination is purchasable and the optimizer searches the per-dimension
// grids exactly; on a FixedRungCatalog the purchasable set is the listed
// specs and the same optimizer degenerates to the paper's
// cheapest-dominating search.
//
// The optimizer is a small exact branch-and-bound (<= 4 dimensions x <= 41
// grid levels): when the covering bundle fits the budget it is provably the
// cheapest dominating bundle (prices are separable and per-dimension
// monotone); when the budget binds it minimizes first the total demand
// shortfall (in grid steps) and then price, reporting the binding dimension
// so the tenant's explanation names what the budget is starving.

#ifndef DBSCALE_SCALER_DIAGONAL_H_
#define DBSCALE_SCALER_DIAGONAL_H_

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/container/catalog.h"
#include "src/scaler/audit.h"
#include "src/scaler/budget_manager.h"
#include "src/scaler/categories.h"
#include "src/scaler/demand_estimator.h"
#include "src/scaler/knobs.h"
#include "src/scaler/policy.h"
#include "src/scaler/thresholds.h"

namespace dbscale::scaler {

struct DiagonalOptions {
  SignalThresholds thresholds = SignalThresholds::Default();
  DemandEstimatorOptions estimator;
  CategorizeOptions categorize;
  /// Demand for a dimension is usage / (target_utilization_pct / 100): the
  /// allocation at which observed usage would sit at the target utilization
  /// (the "buffer for performance" Section 7.3 keeps).
  double target_utilization_pct = 70.0;
  /// Consecutive low-demand intervals required before shrinking, by
  /// sensitivity (same knob semantics as Auto).
  int down_patience_high = 5;
  int down_patience_medium = 3;
  int down_patience_low = 1;
  /// With LOW sensitivity, consecutive BAD intervals required to scale up.
  int up_patience_low_sensitivity = 2;
  /// Latency-slack scale-down: latency at or below this fraction of the
  /// goal allows shedding one grid step per dimension even without
  /// low-demand rule hits. <= 0 disables.
  double down_latency_slack_ratio = 0.5;
  /// Intervals to wait after a scale-up before scaling up again.
  int up_cooldown_intervals = 2;
  /// A dimension only shrinks if projected utilization on the smaller
  /// allocation stays below this percentage.
  double down_projected_util_guard_pct = 75.0;
  /// No shed happens while latency exceeds this fraction of the goal:
  /// near the goal, queueing at low utilization means an "idle"
  /// dimension can still be load-bearing. <= 0 disables.
  double down_latency_gate_ratio = 0.65;
  /// Grid levels a dimension may shed in a single down move.
  int down_max_levels_per_move = 1;
  /// A latency breach within this many intervals of a down move floors
  /// the shed dimensions at their pre-shed levels...
  int down_breach_window_intervals = 3;
  /// ...for this long. Floors expire so post-burst descents are not
  /// locked out forever. <= 0 disables floor learning.
  int down_floor_ttl_intervals = 90;
  /// Wait-directed correction: when latency is bad but no Section 4 rule
  /// fires (waits pile up in a dimension whose utilization looks idle —
  /// exactly the state a per-dimension shed can create), the dimension
  /// behind the dominant wait class grows one grid level, provided that
  /// class holds at least this share of waits. <= 0 disables.
  double wait_directed_up_min_pct = 25.0;
  BudgetStrategy budget_strategy = BudgetStrategy::kAggressive;
  int budget_conservative_k = 4;
  /// Resize-lifecycle resilience (same semantics as AutoScalerOptions).
  int resize_max_attempts = 4;
  int resize_backoff_base_intervals = 1;
  double resize_backoff_multiplier = 2.0;
  int resize_backoff_max_intervals = 8;
  int resize_rejection_cooldown_intervals = 10;

  Status Validate() const;
};

/// \brief Exact budgeted multi-dimensional bundle search over a Catalog's
/// per-dimension offer grids.
///
/// Construction snapshots the catalog's grids and price components into
/// fixed arrays; Solve() is then deterministic and allocation-free
/// (alloc-guard enforced), suitable for the per-tenant decision hot path.
class DiagonalOptimizer {
 public:
  /// The cheapest bundle covering a demand vector within a budget.
  struct Target {
    /// Per-dimension grid levels of the chosen bundle.
    container::GridLevels levels{};
    /// Listed-spec index on fixed catalogs; -1 on flexible ones.
    int spec_index = -1;
    /// Purchase price of the bundle.
    double price = 0.0;
    /// Total grid steps of unmet demand (0 when demand is fully covered).
    int shortfall_steps = 0;
    /// Dimension with the largest shortfall when the budget binds.
    container::ResourceKind binding_dimension = container::ResourceKind::kCpu;
    /// True when the budget prevented covering the full demand vector.
    bool budget_limited = false;
    /// False when not even the cheapest bundle fits the budget.
    bool feasible = false;
  };

  explicit DiagonalOptimizer(const container::Catalog& catalog);

  /// Solves for the cheapest purchasable bundle dominating `demand` with
  /// price <= `budget`; when none exists, the feasible bundle minimizing
  /// (total shortfall steps, then price). Deterministic: ties break toward
  /// the first candidate in fixed enumeration order.
  Target Solve(const container::ResourceVector& demand, double budget) const;

  /// The container for a solved target (grid bundle or listed spec).
  container::ContainerSpec Materialize(const Target& target) const;

  /// Smallest grid level covering `demand` in `kind` (top level if none).
  int LevelFor(container::ResourceKind kind, double demand) const;
  /// Largest grid level with value <= `value` ("cover" of an allocation).
  int LevelWithin(container::ResourceKind kind, double value) const;
  /// Grid value at a level.
  double ValueAt(container::ResourceKind kind, int level) const;
  int grid_size(container::ResourceKind kind) const {
    return grid_size_[static_cast<size_t>(kind)];
  }
  /// Grid levels per lock-step rung step (1 on fixed catalogs).
  int levels_per_rung() const { return levels_per_rung_; }
  bool flexible() const { return flexible_; }

 private:
  Target SolveFlexible(const container::GridLevels& need,
                       double budget) const;
  Target SolveFixed(const container::GridLevels& need, double budget) const;

  container::Catalog catalog_;
  bool flexible_ = false;
  int levels_per_rung_ = 1;
  std::array<int, container::kNumResources> grid_size_{};
  std::array<std::array<double, container::kMaxGridLevels>,
             container::kNumResources>
      grid_value_{};
  std::array<std::array<double, container::kMaxGridLevels>,
             container::kNumResources>
      dim_price_{};
  /// Cheapest completion of dimensions [d, kNumResources): sum of each
  /// remaining dimension's level-0 price component (budget lower bound).
  std::array<double, container::kNumResources + 1> min_rest_{};
  /// Fixed-path tables (empty on flexible catalogs): per listed spec
  /// (ascending price), its price, resources, and the largest grid level
  /// each dimension covers.
  std::vector<double> spec_price_;
  std::vector<container::ResourceVector> spec_res_;
  std::vector<container::GridLevels> spec_cover_;
};

/// \brief The diagonal scaling policy: per-resource demand vector +
/// budgeted multi-dimensional optimizer, with Auto's operational guardrails
/// (warmup, actuation lifecycle, cooldowns, patience, saturation guard).
///
/// Differences from Auto, by design:
///   * Each dimension moves independently — one decision can grow CPU while
///     shedding disk I/O (kScaleDiagonalRebalance).
///   * Memory shrinks on the same evidence as other dimensions (projected
///     utilization under the guard); there is no balloon pass — the
///     flexible grid's fine memory steps make the probe's risk window
///     smaller than a full rung drop.
///   * When the budget binds, the decision reports the binding dimension
///     and the shortfall in grid steps (kHoldBudgetBindingDimension).
class DiagonalScaler : public ScalingPolicy {
 public:
  /// Errors if knobs or options are invalid or the budget cannot cover the
  /// period.
  static Result<std::unique_ptr<DiagonalScaler>> Create(
      const container::Catalog& catalog, const TenantKnobs& knobs,
      const DiagonalOptions& options = {});

  ScalingDecision Decide(const PolicyInput& input) override;
  std::string name() const override { return "Diagonal"; }

  /// Introspection (tests, drill-down experiments).
  const BudgetManager* budget() const { return budget_.get(); }
  const DiagonalOptimizer& optimizer() const { return optimizer_; }
  const TenantKnobs& knobs() const { return knobs_; }
  const CategorizedSignals& last_categories() const { return last_cats_; }
  const DemandEstimate& last_estimate() const { return last_estimate_; }
  const AuditLog& audit() const { return audit_; }

 private:
  DiagonalScaler(const container::Catalog& catalog, const TenantKnobs& knobs,
                 const DiagonalOptions& options,
                 std::unique_ptr<BudgetManager> budget);

  ScalingDecision DecideUnclamped(const PolicyInput& input);
  std::optional<ScalingDecision> HandleActuationFeedback(
      const PolicyInput& input);
  int BackoffIntervals(int failed_attempts) const;
  int DownPatience() const;
  double AvailableBudget() const;
  ScalingDecision HoldCurrent(const PolicyInput& input,
                              Explanation explanation) const;
  /// Mean absolute per-resource usage for the ended interval: engine truth
  /// when the harness provides it, utilization x allocation otherwise.
  container::ResourceVector UsageVector(const PolicyInput& input) const;

  container::Catalog catalog_;
  TenantKnobs knobs_;
  DiagonalOptions options_;
  DemandEstimator estimator_;
  std::unique_ptr<BudgetManager> budget_;
  DiagonalOptimizer optimizer_;

  struct RetryPlan {
    container::ContainerSpec target;
    int failed_attempts = 0;
    int retry_at_interval = 0;
  };
  std::optional<RetryPlan> retry_;
  int rejected_target_id_ = -1;
  int rejected_until_interval_ = -1000;
  int decision_attempt_ = 1;

  int low_streak_ = 0;
  int bad_streak_ = 0;
  int last_up_interval_ = -1000;

  /// Shed-floor learning: the last decision that lowered any dimension,
  /// and per-dimension floors raised when latency broke within
  /// down_breach_window_intervals of it. A bad shed gets probed once, not
  /// every time latency dips back under the gate.
  int last_down_interval_ = -1000;
  container::GridLevels last_down_from_{};
  container::GridLevels last_down_to_{};
  container::GridLevels down_floor_{};
  std::array<int, container::kNumResources> down_floor_until_{};

  CategorizedSignals last_cats_;
  DemandEstimate last_estimate_;
  /// Demand vector computed during the last Decide (zero before the signal
  /// window warms up); copied into every decision's `demand` field.
  container::ResourceVector last_estimate_demand_;
  AuditLog audit_;
};

}  // namespace dbscale::scaler

#endif  // DBSCALE_SCALER_DIAGONAL_H_
