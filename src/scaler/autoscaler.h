// The end-to-end auto-scaling logic (Section 6 of the paper), combining the
// telemetry-derived signals, the demand estimator, the budget manager, and
// ballooning into one closed loop:
//
//   * Scale UP only when latency is BAD (or significantly degrading toward
//     the goal) AND the estimator finds demand for a resource AND the budget
//     allows — latency violations without resource demand (lock-bound
//     workloads) do not scale.
//   * If the latency goal is met, hold even when demand is high — the goal
//     knob converts latency slack into savings.
//   * Scale DOWN when latency is GOOD and demand is LOW for several
//     consecutive intervals (patience set by the sensitivity knob). Memory
//     only shrinks after a balloon pass confirms low memory demand.
//   * Without a latency goal, scaling rests purely on estimated demand.
//   * The chosen container is the cheapest catalog entry dominating the
//     desired resources within the interval's token-bucket budget; if the
//     desired container does not fit, the most expensive affordable one is
//     taken ("Scale-up constrained by budget").

#ifndef DBSCALE_SCALER_AUTOSCALER_H_
#define DBSCALE_SCALER_AUTOSCALER_H_

#include <memory>
#include <optional>
#include <string>

#include "src/container/catalog.h"
#include "src/scaler/audit.h"
#include "src/scaler/balloon.h"
#include "src/scaler/budget_manager.h"
#include "src/scaler/categories.h"
#include "src/scaler/demand_estimator.h"
#include "src/scaler/knobs.h"
#include "src/scaler/policy.h"
#include "src/scaler/thresholds.h"

namespace dbscale::scaler {

struct AutoScalerOptions {
  SignalThresholds thresholds = SignalThresholds::Default();
  DemandEstimatorOptions estimator;
  CategorizeOptions categorize;
  BalloonOptions balloon;
  bool enable_ballooning = true;
  /// Consecutive low-demand intervals required before scaling down, by
  /// sensitivity.
  int down_patience_high = 5;
  int down_patience_medium = 3;
  int down_patience_low = 1;
  /// With LOW sensitivity, consecutive BAD intervals required to scale up.
  int up_patience_low_sensitivity = 2;
  /// Latency-slack scale-down (Section 2.3: meet the goal with a smaller
  /// container even when demand is high): when latency stays at or below
  /// this fraction of the goal, try stepping one rung down even without
  /// low-demand signals. <= 0 disables.
  double down_latency_slack_ratio = 0.5;
  /// Intervals to wait after a scale-up before scaling up again: a resize
  /// takes effect online but queued backlog and the robust-aggregation
  /// window keep latency looking bad for a little while; reacting to that
  /// stale signal overshoots.
  int up_cooldown_intervals = 2;
  /// Scale-down saturation guard: a dimension only shrinks if its projected
  /// utilization on the smaller allocation (current usage / new allocation)
  /// stays below this percentage. Prevents shrinking straight into a
  /// queueing cliff (the "buffer for performance" both online techniques
  /// keep, Section 7.3).
  double down_projected_util_guard_pct = 75.0;
  BudgetStrategy budget_strategy = BudgetStrategy::kAggressive;
  int budget_conservative_k = 4;
  /// Resize-lifecycle resilience (fault injection, Section 5 operational
  /// notes): total attempts per target before the scaler abandons the
  /// resize, and the exponential backoff (in billing intervals) between
  /// attempts: base * multiplier^(failures-1), capped at the max.
  int resize_max_attempts = 4;
  int resize_backoff_base_intervals = 1;
  double resize_backoff_multiplier = 2.0;
  int resize_backoff_max_intervals = 8;
  /// Intervals a permanently-rejected target stays off-limits before the
  /// scaler may request it again.
  int resize_rejection_cooldown_intervals = 10;
};

/// \brief The paper's "Auto" policy.
class AutoScaler : public ScalingPolicy {
 public:
  /// Errors if knobs are invalid or the budget cannot cover the period.
  static Result<std::unique_ptr<AutoScaler>> Create(
      const container::Catalog& catalog, const TenantKnobs& knobs,
      const AutoScalerOptions& options = {});

  /// Charges `input.charged_cost` against the token bucket, runs the
  /// closed-loop logic, then clamps the result to the available budget (a
  /// hold is forcibly downsized if its price no longer fits — the budget
  /// is a hard constraint, Section 2.3).
  ScalingDecision Decide(const PolicyInput& input) override;
  std::string name() const override { return "Auto"; }

  /// Introspection (tests, drill-down experiments).
  const BudgetManager* budget() const { return budget_.get(); }
  const BalloonController& balloon() const { return balloon_; }
  const DemandEstimator& estimator() const { return estimator_; }
  const TenantKnobs& knobs() const { return knobs_; }
  /// Signals categorized during the last Decide (for explanation benches).
  const CategorizedSignals& last_categories() const { return last_cats_; }
  const DemandEstimate& last_estimate() const { return last_estimate_; }
  /// Full decision history (Section 4's explanations + diagnostics).
  const AuditLog& audit() const { return audit_; }

 private:
  AutoScaler(const container::Catalog& catalog, const TenantKnobs& knobs,
             const AutoScalerOptions& options,
             std::unique_ptr<BudgetManager> budget);

  ScalingDecision DecideUnclamped(const PolicyInput& input);
  /// Processes `input.actuation` lifecycle feedback (local resizes and
  /// migrations alike); returns a hold decision (pending / backoff /
  /// rejected / abandoned / saturated) or nullopt when the normal decision
  /// cycle should proceed.
  std::optional<ScalingDecision> HandleActuationFeedback(
      const PolicyInput& input);
  /// Backoff before attempt `failed_attempts + 1`, in intervals (>= 1).
  int BackoffIntervals(int failed_attempts) const;
  int DownPatience() const;
  double AvailableBudget() const;
  ScalingDecision HoldCurrent(const PolicyInput& input,
                              Explanation explanation) const;
  /// Finishes a "balloon" trace span and bumps the tick/abort/completion
  /// counters for one advice.
  static void RecordBalloonAdvice(const BalloonController::Advice& advice,
                                  obs::SpanId span,
                                  const PolicyInput& input);
  /// Dominant non-scalable wait class summary ("Lock 92% of waits"), used
  /// in not-scaling explanations.
  static std::string DominantWaitNote(
      const telemetry::SignalSnapshot& signals);

  container::Catalog catalog_;
  TenantKnobs knobs_;
  AutoScalerOptions options_;
  DemandEstimator estimator_;
  std::unique_ptr<BudgetManager> budget_;
  BalloonController balloon_;

  /// Scheduled retry after a transient resize failure.
  struct RetryPlan {
    container::ContainerSpec target;
    int failed_attempts = 0;
    /// Interval index at which the retry is due.
    int retry_at_interval = 0;
  };
  std::optional<RetryPlan> retry_;
  /// Permanently-rejected target and the interval its cooldown expires.
  int rejected_target_id_ = -1;
  int rejected_until_interval_ = -1000;
  /// Attempt number carried by the decision being audited (retries > 1).
  int decision_attempt_ = 1;

  int low_streak_ = 0;
  int bad_streak_ = 0;
  /// Interval index of the last scale-up (-1000: none yet).
  int last_up_interval_ = -1000;
  /// Set when a balloon pass reached the next-smaller container's memory.
  bool memory_low_confirmed_ = false;

  CategorizedSignals last_cats_;
  DemandEstimate last_estimate_;
  AuditLog audit_;
};

}  // namespace dbscale::scaler

#endif  // DBSCALE_SCALER_AUTOSCALER_H_
