// Budget manager (Section 5 of the paper).
//
// A tenant budget B spans a budgeting period of n billing intervals; the
// manager translates it into a per-interval available budget B_i online,
// with no knowledge of future demand, such that sum(C_i) <= B and
// B_i >= Cmin always. The paper adapts the *token bucket* from network
// traffic shaping:
//
//   depth  D  = B - (n-1) * Cmin       (maximum burst spend)
//   fill   TR (tokens added per interval; the guaranteed steady spend)
//   init   TI (tokens at period start)
//
// Strategies:
//   kAggressive:   TI = D, TR = Cmin — burst freely early; worst case the
//                  tail of the period is pinned to the cheapest container.
//   kConservative: TI = K * Cmax (K intervals of max-spend headroom),
//                  TR = (B - TI) / (n - 1) — smooths spend, saving budget
//                  for bursts later in the period.

#ifndef DBSCALE_SCALER_BUDGET_MANAGER_H_
#define DBSCALE_SCALER_BUDGET_MANAGER_H_

#include <string>

#include "src/common/result.h"

namespace dbscale::scaler {

/// Token-bucket configuration strategy.
enum class BudgetStrategy { kAggressive, kConservative };

const char* BudgetStrategyToString(BudgetStrategy s);

struct BudgetManagerOptions {
  /// Total budget B for the period.
  double total_budget = 0.0;
  /// Billing intervals n in the period.
  int num_intervals = 0;
  /// Cheapest / most expensive container price per interval.
  double min_cost = 0.0;
  double max_cost = 0.0;
  BudgetStrategy strategy = BudgetStrategy::kAggressive;
  /// K for the conservative strategy: bursts limited to ~K max-cost
  /// intervals (plus accumulated surplus).
  int conservative_k = 4;
};

/// \brief Online per-interval budget allocation via a token bucket.
class BudgetManager {
 public:
  /// Validates and builds a manager. Requires B >= n * Cmin (otherwise even
  /// the cheapest container cannot be afforded every interval).
  static Result<BudgetManager> Create(const BudgetManagerOptions& options);

  /// Tokens currently available: the budget B_i for the upcoming interval.
  double available() const { return tokens_; }

  /// Charges the cost of the interval just started; then refills TR for
  /// the next interval (clamped to the bucket depth). Errors if `cost`
  /// exceeds available tokens (the caller must size within available()).
  Status ChargeAndRefill(double cost);

  /// Completed charge count (intervals consumed so far).
  int intervals_charged() const { return intervals_charged_; }
  /// Total spend so far; invariant: spent() <= options().total_budget.
  double spent() const { return spent_; }

  double fill_rate() const { return fill_rate_; }
  double depth() const { return depth_; }
  double initial_tokens() const { return initial_tokens_; }
  const BudgetManagerOptions& options() const { return options_; }

  std::string ToString() const;

 private:
  explicit BudgetManager(const BudgetManagerOptions& options);

  BudgetManagerOptions options_;
  double fill_rate_ = 0.0;
  double depth_ = 0.0;
  double initial_tokens_ = 0.0;
  double tokens_ = 0.0;
  double spent_ = 0.0;
  int intervals_charged_ = 0;
};

}  // namespace dbscale::scaler

#endif  // DBSCALE_SCALER_BUDGET_MANAGER_H_
