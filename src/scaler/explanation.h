// Structured scaling-decision explanations.
//
// Every ScalingDecision carries an Explanation: a stable ExplanationCode
// (covering the Section 4 rule hierarchy plus the baseline, budget and
// balloon reasons), the resource it refers to (when per-resource), a small
// numeric payload, and an optional detail string for composed summaries.
// The paper surfaces decision reasons to tenants; making them an enum (a)
// lets trace spans and metrics carry the code instead of parsing prose,
// and (b) pins the user-visible text in exactly one place:
// Explanation::ToString() is the ONLY code that renders explanation text.

#ifndef DBSCALE_SCALER_EXPLANATION_H_
#define DBSCALE_SCALER_EXPLANATION_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "src/container/container.h"
#include "src/obs/metrics.h"

namespace dbscale::scaler {

/// Stable machine-readable decision reasons. Values are contiguous from 0
/// (kUnset) so they can index a per-code decision-counter block; append new
/// codes at the end of their group and update kNumExplanationCodes.
enum class ExplanationCode : uint8_t {
  kUnset = 0,
  /// Free-text escape hatch for harness-synthesized decisions (benches,
  /// offline schedules); `detail` is rendered verbatim.
  kNote,

  // -------- Auto scaler decision cycle --------
  kHoldWarmup,
  kHoldUpCooldown,
  kHoldNoAffordableContainer,
  kHoldNoLargerAffordable,      ///< detail = increase summary
  kScaleUpBudgetConstrained,    ///< detail = wanted name; args: wanted
                                ///  price, available budget
  kScaleUpDemand,               ///< detail = increase summary
  kHoldLatencyNotResource,      ///< detail = dominant-wait note
  kHoldBalloonRevert,
  kHoldGoalMetSavings,          ///< detail = increase summary
  kHoldBalloonShrinking,        ///< args: current limit MB, target MB
  kHoldBalloonAborted,          ///< args: limit MB, reads/s, baseline/s
  kBalloonCompleted,            ///< args: target MB
  kHoldDemandSteady,
  kHoldDownPatience,            ///< args: low streak, patience
  kHoldMemoryUnvalidated,
  kScaleDownDemand,             ///< detail = decrease summary
  kScaleDownMemoryReclaimable,  ///< detail = decrease summary
  kScaleDownLatencySlack,       ///< args: latency ms, goal ms
  kScaleDownForcedByBudget,     ///< detail = inner rendered explanation;
                                ///  args: available budget
  kHoldResizePending,           ///< args: attempt
  kHoldResizeBackoff,           ///< args: failed attempt, intervals until
                                ///  retry
  kScaleRetryResize,            ///< detail = target name; args: attempt
  kHoldResizeRejected,          ///< detail = target name; args: cooldown
                                ///  intervals remaining
  kHoldResizeAbandoned,         ///< args: attempts made
  kHoldDegradedTelemetry,       ///< args: window coverage %

  // -------- Section 4 demand-rule hierarchy (resource required) --------
  kRuleSevereBottleneck,
  kRuleHighUtilHighWait,
  kRuleHighUtilHighWaitTrend,
  kRuleHighUtilMedWaitTrend,
  kRuleHighUtilCorrelation,
  kRuleWaitLedDemand,
  kRuleIdle,
  kRuleLowUtilLowWait,
  kRuleUtilOnlyExtreme,  ///< waits-ablated estimator
  kRuleUtilOnlyHigh,
  kRuleUtilOnlyLow,

  // -------- Baseline policies --------
  kBaselineStatic,
  kBaselineTraceSchedule,
  kUtilHold,
  kUtilWarmup,
  kUtilScaleUp,         ///< args: latency ms, goal ms, max utilization %
  kUtilAtMaxContainer,
  kUtilScaleDown,       ///< args: latency ms
  kUtilDownCooldown,

  // -------- Host placement / migration (appended: codes index counter
  // blocks, so existing values must not shift) --------
  kHoldMigrationPending,    ///< args: attempt, downtime intervals so far
  kScaleTriggersMigration,  ///< detail = target name; args: target rung
  kHoldHostSaturated,       ///< detail = target name; args: cooldown
                            ///  intervals remaining

  // -------- Diagonal scaling (appended: codes index counter blocks, so
  // existing values must not shift) --------
  kScaleDiagonalUp,         ///< detail = demand summary; args: new price,
                            ///  old price
  kScaleDiagonalDown,       ///< detail = demand summary; args: new price,
                            ///  old price
  kScaleDiagonalRebalance,  ///< detail = target bundle name; args: dims
                            ///  scaled up, dims scaled down
  kHoldBudgetBindingDimension,  ///< resource = binding dimension; args:
                                ///  shortfall grid steps, available budget
};

inline constexpr size_t kNumExplanationCodes =
    static_cast<size_t>(ExplanationCode::kHoldBudgetBindingDimension) + 1;

/// Stable snake_case token for metrics labels / trace attributes.
const char* ExplanationCodeToken(ExplanationCode code);

/// \brief One decision's reason: code + payload; ToString() renders the
/// canonical human-readable text.
struct Explanation {
  ExplanationCode code = ExplanationCode::kUnset;
  /// The resource the code refers to (required for kRule* codes).
  std::optional<container::ResourceKind> resource;
  /// Composed-summary / free-text payload (see per-code comments).
  std::string detail;
  /// Numeric payload (see per-code comments); unused slots are 0.
  std::array<double, 3> args{};

  Explanation() = default;
  explicit Explanation(ExplanationCode c) : code(c) {}
  Explanation(ExplanationCode c, std::string d)
      : code(c), detail(std::move(d)) {}
  Explanation(ExplanationCode c, container::ResourceKind r)
      : code(c), resource(r) {}
  Explanation(ExplanationCode c, double a0, double a1 = 0.0, double a2 = 0.0)
      : code(c), args{a0, a1, a2} {}

  bool set() const { return code != ExplanationCode::kUnset; }

  /// Renders the canonical text. This is the single place explanation
  /// prose exists; every other layer stores or forwards the result.
  std::string ToString() const;
};

/// Registers one counter per ExplanationCode as a contiguous id block
/// (names `dbscale_decisions_total{code="<token>"}`); returns the id for
/// code 0 — the counter for code `c` is `base + static_cast<MetricId>(c)`.
/// Idempotent; CHECKs that the block stayed contiguous.
obs::MetricId RegisterDecisionCounters(obs::MetricRegistry* registry);

}  // namespace dbscale::scaler

#endif  // DBSCALE_SCALER_EXPLANATION_H_
