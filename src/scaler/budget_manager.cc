#include "src/scaler/budget_manager.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace dbscale::scaler {

const char* BudgetStrategyToString(BudgetStrategy s) {
  switch (s) {
    case BudgetStrategy::kAggressive:
      return "aggressive";
    case BudgetStrategy::kConservative:
      return "conservative";
  }
  return "?";
}

Result<BudgetManager> BudgetManager::Create(
    const BudgetManagerOptions& options) {
  if (options.num_intervals <= 0) {
    return Status::InvalidArgument("num_intervals must be positive");
  }
  if (options.min_cost <= 0.0 || options.max_cost < options.min_cost) {
    return Status::InvalidArgument(
        "need 0 < min_cost <= max_cost");
  }
  if (options.total_budget <
      options.min_cost * static_cast<double>(options.num_intervals)) {
    return Status::InvalidArgument(StrFormat(
        "budget %.2f cannot afford the cheapest container (%.2f) for all "
        "%d intervals",
        options.total_budget, options.min_cost, options.num_intervals));
  }
  if (options.strategy == BudgetStrategy::kConservative &&
      options.conservative_k <= 0) {
    return Status::InvalidArgument("conservative_k must be positive");
  }
  return BudgetManager(options);
}

BudgetManager::BudgetManager(const BudgetManagerOptions& options)
    : options_(options) {
  const double b = options.total_budget;
  const double n = static_cast<double>(options.num_intervals);
  const double cmin = options.min_cost;

  // D = B - (n-1) * Cmin guarantees sum(C_i) <= B: the bucket can never
  // hold more than the budget minus the floor spend of the remaining
  // intervals.
  depth_ = b - (n - 1.0) * cmin;
  switch (options.strategy) {
    case BudgetStrategy::kAggressive:
      initial_tokens_ = depth_;
      fill_rate_ = cmin;
      break;
    case BudgetStrategy::kConservative: {
      // TI <= D keeps TR >= Cmin (so the cheapest container always fits);
      // total issuance TI + (n-1) * TR == B either way.
      initial_tokens_ = std::min(
          static_cast<double>(options.conservative_k) * options.max_cost,
          depth_);
      fill_rate_ = n > 1.0 ? (b - initial_tokens_) / (n - 1.0) : 0.0;
      break;
    }
  }
  tokens_ = initial_tokens_;
}

Status BudgetManager::ChargeAndRefill(double cost) {
  if (cost < 0.0) {
    return Status::InvalidArgument("cost must be non-negative");
  }
  if (cost > tokens_ + 1e-9) {
    return Status::ResourceExhausted(StrFormat(
        "cost %.2f exceeds available budget %.2f", cost, tokens_));
  }
  if (intervals_charged_ >= options_.num_intervals) {
    return Status::FailedPrecondition("budgeting period already complete");
  }
  tokens_ -= cost;
  spent_ += cost;
  ++intervals_charged_;
  if (intervals_charged_ < options_.num_intervals) {
    tokens_ = std::min(tokens_ + fill_rate_, depth_);
  }
  return Status::OK();
}

std::string BudgetManager::ToString() const {
  return StrFormat(
      "token-bucket{%s B=%.1f n=%d D=%.1f TI=%.1f TR=%.2f tokens=%.1f "
      "spent=%.1f}",
      BudgetStrategyToString(options_.strategy), options_.total_budget,
      options_.num_intervals, depth_, initial_tokens_, fill_rate_, tokens_,
      spent_);
}

}  // namespace dbscale::scaler
