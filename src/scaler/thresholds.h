// Signal thresholds (Section 4.1 of the paper).
//
// Thresholds turn continuous signals into categories with well-understood
// semantics (LOW/MEDIUM/HIGH utilization, LOW/MEDIUM/HIGH wait magnitude,
// SIGNIFICANT/NOT-SIGNIFICANT wait share, GOOD/BAD latency). Utilization and
// latency thresholds are straightforward (Figure 5); wait thresholds are
// calibrated from service-wide fleet telemetry by separating the wait
// distributions observed under low vs. high utilization (Figure 6) — see
// src/fleet/calibrator.h for the calibration pipeline.
//
// Wait magnitudes are categorized on a per-completed-request basis
// (milliseconds of resource wait per request) so one threshold set applies
// across container sizes; the calibrator derives exactly this quantity from
// fleet telemetry.

#ifndef DBSCALE_SCALER_THRESHOLDS_H_
#define DBSCALE_SCALER_THRESHOLDS_H_

#include <array>
#include <string>

#include "src/common/result.h"
#include "src/container/container.h"

namespace dbscale::scaler {

/// Thresholds for one resource dimension.
struct ResourceThresholds {
  /// Utilization (percent): LOW below, HIGH above, MEDIUM between.
  double util_low_pct = 30.0;
  double util_high_pct = 70.0;
  /// Wait magnitude per completed request (ms): LOW below, HIGH above.
  double wait_low_ms_per_req = 2.0;
  double wait_high_ms_per_req = 25.0;
  /// Wait share of total waits (percent) above which the resource's waits
  /// are SIGNIFICANT.
  double wait_pct_significant = 30.0;
};

/// \brief Full threshold set used by the demand estimator.
struct SignalThresholds {
  std::array<ResourceThresholds, container::kNumResources> per_resource{};
  /// Spearman |rho| above which a wait/latency correlation is significant.
  double correlation_significant = 0.60;
  /// Extreme multipliers: utilization above util_high * this (capped at
  /// ~100%) or waits above wait_high * this indicate 2-step demand.
  double extreme_factor = 2.0;

  const ResourceThresholds& For(container::ResourceKind kind) const {
    return per_resource[static_cast<size_t>(kind)];
  }
  ResourceThresholds& For(container::ResourceKind kind) {
    return per_resource[static_cast<size_t>(kind)];
  }

  /// Hand-tuned defaults, matching the well-known administrator rules the
  /// paper cites for utilization (30/70) and conservative wait thresholds.
  static SignalThresholds Default();

  Status Validate() const;
  std::string ToString() const;
};

}  // namespace dbscale::scaler

#endif  // DBSCALE_SCALER_THRESHOLDS_H_
