// Tenant-facing auto-scaling knobs (Section 2.3 of the paper).
//
// Tenants reason about money and latency, not resources:
//   * an optional hard budget over a budgeting period,
//   * an optional latency goal (average or 95th percentile),
//   * a coarse performance-sensitivity level for tenants without precise
//     goals.

#ifndef DBSCALE_SCALER_KNOBS_H_
#define DBSCALE_SCALER_KNOBS_H_

#include <optional>
#include <string>

#include "src/common/result.h"
#include "src/telemetry/manager.h"

namespace dbscale::scaler {

/// Latency goal: aggregate type + target in milliseconds.
struct LatencyGoal {
  telemetry::LatencyAggregate aggregate = telemetry::LatencyAggregate::kP95;
  double target_ms = 0.0;
};

/// Coarse performance sensitivity (Section 2.3): HIGH scales up eagerly and
/// down reluctantly; LOW is the reverse. Default MEDIUM.
enum class Sensitivity { kLow, kMedium, kHigh };

const char* SensitivityToString(Sensitivity s);

/// Budget over a budgeting period of `num_intervals` billing intervals.
struct BudgetKnob {
  double total_budget = 0.0;
  int num_intervals = 0;
};

/// \brief Everything a tenant may (optionally) specify.
struct TenantKnobs {
  std::optional<BudgetKnob> budget;
  std::optional<LatencyGoal> latency_goal;
  Sensitivity sensitivity = Sensitivity::kMedium;

  Status Validate() const;
  std::string ToString() const;
};

}  // namespace dbscale::scaler

#endif  // DBSCALE_SCALER_KNOBS_H_
