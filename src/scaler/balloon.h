// Balloon controller for low-memory-demand detection (Section 4.3).
//
// Memory utilization is rarely LOW (caches never volunteer memory back) and
// memory waits stay low while the working set fits — so utilization and
// waits cannot distinguish "memory is reclaimable" from "memory is exactly
// what keeps I/O off the disk". Inspired by VM ballooning, the controller
// *gradually* shrinks the tenant's effective memory toward the next smaller
// container size while watching physical I/O:
//   * reach the target with no significant I/O increase -> memory demand is
//     genuinely low; the auto-scaler may take the smaller container;
//   * I/O rises -> abort, restore the allocation, and back off. The impact
//     is minimal because each step is small (Figure 14).

#ifndef DBSCALE_SCALER_BALLOON_H_
#define DBSCALE_SCALER_BALLOON_H_

#include <optional>
#include <string>

#include "src/common/result.h"
#include "src/scaler/explanation.h"

namespace dbscale::scaler {

struct BalloonOptions {
  /// Fraction of the (start - target) gap removed per tick.
  double shrink_step_fraction = 0.34;
  /// Abort when reads/sec exceeds baseline * factor + margin.
  double io_abort_factor = 1.5;
  double io_abort_margin_rps = 25.0;
  /// Ticks to wait after an abort before ballooning may restart.
  int cooldown_ticks = 10;
};

/// \brief Gradual memory-shrink state machine.
class BalloonController {
 public:
  enum class State { kIdle, kShrinking, kCooldown };

  /// Result of one tick while active.
  struct Advice {
    /// Memory limit to apply now (nullopt: leave the current limit).
    std::optional<double> memory_limit_mb;
    /// Reached the target without an I/O increase: low memory demand
    /// confirmed.
    bool completed = false;
    /// I/O rose: the shrink was reverted (memory_limit_mb carries the
    /// restore value).
    bool aborted = false;
    /// Structured reason (kHoldBalloonShrinking / kHoldBalloonAborted /
    /// kBalloonCompleted with the MB / read-rate payload filled in);
    /// decisions carry this directly.
    Explanation explanation;
  };

  explicit BalloonController(BalloonOptions options = {});

  State state() const { return state_; }
  bool active() const { return state_ == State::kShrinking; }

  /// Whether a new balloon may start at tick `tick` (idle and out of
  /// cooldown).
  bool CanStart(int tick) const;

  /// Begins shrinking from `start_mb` toward `target_mb` (< start_mb).
  /// `baseline_reads_per_sec` is the current physical read rate against
  /// which increases are judged; `abort_margin_rps` (if >= 0) overrides the
  /// option default — callers scale it to the container's I/O capacity so
  /// cold-page churn on large containers does not trip the abort.
  Status Start(double start_mb, double target_mb,
               double baseline_reads_per_sec, int tick,
               double abort_margin_rps = -1.0);

  /// Advances the shrink by one tick given the currently observed physical
  /// read rate. Only valid while active().
  Advice Tick(double reads_per_sec, int tick);

  /// Cancels any balloon in progress (e.g. the container changed).
  void Reset();

  double current_limit_mb() const { return current_limit_mb_; }
  double target_mb() const { return target_mb_; }

 private:
  BalloonOptions options_;
  State state_ = State::kIdle;
  double start_mb_ = 0.0;
  double target_mb_ = 0.0;
  double current_limit_mb_ = 0.0;
  double step_mb_ = 0.0;
  double baseline_reads_per_sec_ = 0.0;
  double abort_margin_rps_ = 0.0;
  int cooldown_until_tick_ = -1;
};

}  // namespace dbscale::scaler

#endif  // DBSCALE_SCALER_BALLOON_H_
