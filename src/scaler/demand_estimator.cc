#include "src/scaler/demand_estimator.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/string_util.h"

namespace dbscale::scaler {

using container::ResourceKind;

bool DemandRule::Matches(const ResourceCategories& r) const {
  if (utilization.has_value() && r.utilization != *utilization) return false;
  if (wait_magnitude.has_value() && r.wait_magnitude != *wait_magnitude) {
    return false;
  }
  if (wait_share.has_value() && r.wait_share != *wait_share) return false;
  if (correlation.has_value() && r.wait_latency_correlation != *correlation) {
    return false;
  }
  if (require_increasing_trend && !r.AnyIncreasingTrend()) return false;
  if (forbid_increasing_trend && r.AnyIncreasingTrend()) return false;
  if (require_extreme) {
    if (steps > 0 && !(r.utilization_extreme || r.wait_extreme)) {
      return false;
    }
    if (steps < 0 && !(r.utilization_very_low && r.wait_very_low)) {
      return false;
    }
  }
  return true;
}

bool DemandEstimate::AnyIncrease() const {
  for (const ResourceDemand& d : demand) {
    if (d.steps > 0) return true;
  }
  return false;
}

bool DemandEstimate::AnyDecrease() const {
  for (const ResourceDemand& d : demand) {
    if (d.steps < 0) return true;
  }
  return false;
}

bool DemandEstimate::NoneIncrease() const { return !AnyIncrease(); }

bool DemandEstimate::SuggestsShrink() const {
  return NoneIncrease() && AnyDecrease();
}

namespace {

std::string SummarizeSign(const DemandEstimate& estimate, int sign) {
  std::string out;
  for (ResourceKind kind : container::kAllResources) {
    const ResourceDemand& d = estimate.For(kind);
    if (d.steps != 0 && (sign == 0 || (sign > 0) == (d.steps > 0))) {
      if (!out.empty()) out += "; ";
      out += StrFormat("%s %+d (%s)",
                       container::ResourceKindToString(kind), d.steps,
                       d.explanation.ToString().c_str());
    }
  }
  return out.empty() ? "no demand change" : out;
}

}  // namespace

std::string DemandEstimate::Summary() const {
  return SummarizeSign(*this, 0);
}

std::string DemandEstimate::SummaryIncrease() const {
  return SummarizeSign(*this, +1);
}

std::string DemandEstimate::SummaryDecrease() const {
  return SummarizeSign(*this, -1);
}

DemandEstimator::DemandEstimator(DemandEstimatorOptions options)
    : options_(options) {
  BuildRules();
}

void DemandEstimator::BuildRules() {
  const auto kHigh = Level::kHigh;
  const auto kMedium = Level::kMedium;
  const auto kLow = Level::kLow;
  const auto kSig = Significance::kSignificant;
  const auto kNotSig = Significance::kNotSignificant;

  high_rules_.clear();
  low_rules_.clear();

  if (!options_.use_waits) {
    // Ablated to a utilization-only estimator (what the Util baseline's
    // demand model looks like; kept here for the ablation bench).
    high_rules_.push_back(DemandRule{
        "util-extreme", kHigh, std::nullopt, std::nullopt, std::nullopt,
        false, false, /*require_extreme=*/true, +2,
        ExplanationCode::kRuleUtilOnlyExtreme});
    high_rules_.push_back(DemandRule{
        "util-high", kHigh, std::nullopt, std::nullopt, std::nullopt,
        false, false, false, +1, ExplanationCode::kRuleUtilOnlyHigh});
    DemandRule down{"util-low", kLow, std::nullopt, std::nullopt,
                    std::nullopt, false, options_.use_trends, false, -1,
                    ExplanationCode::kRuleUtilOnlyLow};
    low_rules_.push_back(down);
    return;
  }

  // ---- High-demand hierarchy (Section 4.2), most specific first. ----
  // (0) Overwhelming evidence on both axes: 2-step demand.
  high_rules_.push_back(DemandRule{
      "severe-bottleneck", kHigh, kHigh, kSig, std::nullopt, false, false,
      /*require_extreme=*/true, +2, ExplanationCode::kRuleSevereBottleneck});
  // (a) High utilization + high waits + significant share.
  high_rules_.push_back(DemandRule{
      "high-util-high-wait", kHigh, kHigh, kSig, std::nullopt, false, false,
      false, +1, ExplanationCode::kRuleHighUtilHighWait});
  if (options_.use_trends) {
    // (b) High utilization + high waits, share not significant, but the
    // pressure is building.
    high_rules_.push_back(DemandRule{
        "high-util-high-wait-trend", kHigh, kHigh, kNotSig, std::nullopt,
        /*require_increasing_trend=*/true, false, false, +1,
        ExplanationCode::kRuleHighUtilHighWaitTrend});
    // (c) High utilization + medium waits + significant share + trend.
    high_rules_.push_back(DemandRule{
        "high-util-med-wait-trend", kHigh, kMedium, kSig, std::nullopt,
        /*require_increasing_trend=*/true, false, false, +1,
        ExplanationCode::kRuleHighUtilMedWaitTrend});
  }
  if (options_.use_correlation) {
    // (d) High utilization + medium waits whose magnitude tracks latency.
    high_rules_.push_back(DemandRule{
        "high-util-corr", kHigh, kMedium, kSig, kSig, false, false, false,
        +1, ExplanationCode::kRuleHighUtilCorrelation});
    // (e) Waits leading utilization: medium utilization but high,
    // significant, latency-correlated waits.
    high_rules_.push_back(DemandRule{
        "wait-led-demand", kMedium, kHigh, kSig, kSig, false, false, false,
        +1, ExplanationCode::kRuleWaitLedDemand});
  }

  // ---- Low-demand rules (Section 4.3): the other end of the spectrum. ----
  // Both axes near zero: 2-step shrink.
  low_rules_.push_back(DemandRule{
      "idle", kLow, kLow, std::nullopt, std::nullopt, false,
      /*forbid_increasing_trend=*/options_.use_trends,
      /*require_extreme=*/true, -2, ExplanationCode::kRuleIdle});
  low_rules_.push_back(DemandRule{
      "low-util-low-wait", kLow, kLow, std::nullopt, std::nullopt, false,
      /*forbid_increasing_trend=*/options_.use_trends, false, -1,
      ExplanationCode::kRuleLowUtilLowWait});
}

DemandEstimate DemandEstimator::Estimate(
    const CategorizedSignals& signals) const {
  DemandEstimate estimate;
  if (!signals.valid) return estimate;

  for (ResourceKind kind : container::kAllResources) {
    const ResourceCategories& r = signals.resource(kind);
    ResourceDemand& d = estimate.demand[static_cast<size_t>(kind)];

    for (const DemandRule& rule : high_rules_) {
      if (rule.Matches(r)) {
        d.steps = std::clamp(rule.steps, -kMaxDemandSteps, kMaxDemandSteps);
        d.rule = rule.name;
        d.explanation = Explanation(rule.code, kind);
        break;
      }
    }
    if (d.steps != 0) continue;

    // Low-memory demand cannot be read off utilization and waits: the
    // buffer pool keeps memory utilization high and waits low even when the
    // memory could be reclaimed (Section 4.3). Only ballooning — driven by
    // the auto-scaler — may conclude memory demand is low.
    if (kind == ResourceKind::kMemory) continue;

    for (const DemandRule& rule : low_rules_) {
      if (rule.Matches(r)) {
        d.steps = std::clamp(rule.steps, -kMaxDemandSteps, kMaxDemandSteps);
        d.rule = rule.name;
        d.explanation = Explanation(rule.code, kind);
        break;
      }
    }
  }
  return estimate;
}

}  // namespace dbscale::scaler
