// Categorization of continuous signals (Figure 5 / Section 4.1).
//
// Applying thresholds moves signals from a continuous domain to a
// categorical one with easy-to-understand semantics — the property that
// makes the paper's rule hierarchy constructible, debuggable, and
// explainable.

#ifndef DBSCALE_SCALER_CATEGORIES_H_
#define DBSCALE_SCALER_CATEGORIES_H_

#include <array>
#include <optional>
#include <string>

#include "src/scaler/knobs.h"
#include "src/scaler/thresholds.h"
#include "src/stats/theil_sen.h"
#include "src/telemetry/manager.h"

namespace dbscale::scaler {

enum class LatencyCategory { kGood, kBad };
enum class Level { kLow, kMedium, kHigh };
enum class Significance { kNotSignificant, kSignificant };

const char* LatencyCategoryToString(LatencyCategory c);
const char* LevelToString(Level level);
const char* SignificanceToString(Significance s);

/// Categorized signals for one resource dimension.
struct ResourceCategories {
  Level utilization = Level::kLow;
  /// True when utilization exceeds the extreme bar (2-step demand hint).
  bool utilization_extreme = false;
  /// True when utilization sits below half the LOW bar (2-step shrink hint).
  bool utilization_very_low = false;
  Level wait_magnitude = Level::kLow;
  bool wait_extreme = false;
  bool wait_very_low = false;
  Significance wait_share = Significance::kNotSignificant;
  stats::TrendDirection utilization_trend = stats::TrendDirection::kNone;
  stats::TrendDirection wait_trend = stats::TrendDirection::kNone;
  /// Wait-vs-latency Spearman correlation significance.
  Significance wait_latency_correlation = Significance::kNotSignificant;

  bool AnyIncreasingTrend() const {
    return utilization_trend == stats::TrendDirection::kIncreasing ||
           wait_trend == stats::TrendDirection::kIncreasing;
  }
  bool AnyIncreasingOrFlatTrend() const {
    return utilization_trend != stats::TrendDirection::kDecreasing ||
           wait_trend != stats::TrendDirection::kDecreasing;
  }
};

/// The complete categorical view handed to the rule hierarchy.
struct CategorizedSignals {
  bool valid = false;
  /// Latency vs. the tenant goal. kGood when no goal is specified (scaling
  /// then rests purely on demand, per Section 2.3).
  LatencyCategory latency = LatencyCategory::kGood;
  bool has_latency_goal = false;
  /// Significant increasing latency trend whose projection crosses the goal.
  bool latency_degrading = false;
  /// observed latency / goal (1.0 when no goal); the Util baseline scales
  /// its step count with this.
  double latency_ratio = 1.0;

  std::array<ResourceCategories, container::kNumResources> resources{};

  const ResourceCategories& resource(container::ResourceKind kind) const {
    return resources[static_cast<size_t>(kind)];
  }

  std::string ToString() const;
};

/// Options for categorization.
struct CategorizeOptions {
  /// Seconds ahead to project the latency trend when deciding "degrading".
  double latency_projection_sec = 120.0;
  /// Safety buffer (Section 7.3: "both techniques... keep a buffer for
  /// performance"): latency counts as BAD above this fraction of the goal,
  /// so the scaler reacts before the goal is actually violated.
  double latency_bad_fraction = 0.92;
};

/// Applies `thresholds` (and the optional latency goal) to a signal
/// snapshot.
CategorizedSignals Categorize(const telemetry::SignalSnapshot& signals,
                              const SignalThresholds& thresholds,
                              const std::optional<LatencyGoal>& goal,
                              const CategorizeOptions& options = {});

}  // namespace dbscale::scaler

#endif  // DBSCALE_SCALER_CATEGORIES_H_
