#include "src/container/catalog.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/string_util.h"

namespace dbscale::container {

namespace {

struct Rung {
  double cpu_cores;
  double memory_mb;
  double disk_iops;
  double log_mbps;
  double price;
};

// Eleven lock-step sizes, shaped after the 2016-era commercial catalogs the
// paper describes: 0.5 cores to 32 cores, ~1 GB to ~192 GB, 50 to 10000
// IOPS, price 7..270 units per billing interval. S4's memory (4 GB) and
// S3's (2.5 GB) bracket the 3 GB working set of the Figure 14 ballooning
// experiment.
constexpr Rung kRungs[] = {
    {0.5, 1024.0, 50.0, 2.0, 7.0},        // S1
    {1.0, 1536.0, 100.0, 4.0, 15.0},      // S2
    {2.0, 2560.0, 200.0, 8.0, 30.0},      // S3
    {3.0, 4096.0, 300.0, 12.0, 45.0},     // S4
    {4.0, 8192.0, 500.0, 20.0, 60.0},     // S5
    {6.0, 16384.0, 800.0, 32.0, 90.0},    // S6
    {8.0, 24576.0, 1200.0, 48.0, 120.0},  // S7
    {12.0, 49152.0, 2000.0, 80.0, 150.0},  // S8
    {16.0, 98304.0, 3500.0, 120.0, 180.0},  // S9
    {24.0, 147456.0, 6000.0, 200.0, 240.0},  // S10
    {32.0, 196608.0, 10000.0, 300.0, 270.0},  // S11
};
constexpr int kNumRungs = static_cast<int>(std::size(kRungs));

// Share of a rung's price attributed to each dimension; used to price
// single-dimension variants.
double DimensionWeight(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu:
      return 0.40;
    case ResourceKind::kMemory:
      return 0.25;
    case ResourceKind::kDiskIo:
      return 0.25;
    case ResourceKind::kLogIo:
      return 0.10;
  }
  return 0.0;
}

ResourceVector RungResources(int i) {
  return ResourceVector{kRungs[i].cpu_cores, kRungs[i].memory_mb,
                        kRungs[i].disk_iops, kRungs[i].log_mbps};
}

std::vector<ContainerSpec> LockStepSpecs() {
  std::vector<ContainerSpec> specs;
  specs.reserve(kNumRungs);
  for (int i = 0; i < kNumRungs; ++i) {
    ContainerSpec spec;
    spec.name = StrFormat("S%d", i + 1);
    spec.resources = RungResources(i);
    spec.price_per_interval = kRungs[i].price;
    spec.base_rung = i;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace

Catalog::Catalog(std::vector<ContainerSpec> specs, int num_rungs)
    : specs_(std::move(specs)), num_rungs_(num_rungs) {
  // Price order with a deterministic name tie-break.
  std::stable_sort(specs_.begin(), specs_.end(),
                   [](const ContainerSpec& a, const ContainerSpec& b) {
                     if (a.price_per_interval != b.price_per_interval) {
                       return a.price_per_interval < b.price_per_interval;
                     }
                     return a.name < b.name;
                   });
  rung_ids_.assign(static_cast<size_t>(num_rungs_), -1);
  for (size_t i = 0; i < specs_.size(); ++i) {
    specs_[i].id = static_cast<int>(i);
    // Lock-step rungs are the specs named "S<k>" (no variant suffix).
    if (specs_[i].name.find('-') == std::string::npos) {
      rung_ids_[static_cast<size_t>(specs_[i].base_rung)] =
          static_cast<int>(i);
    }
  }
  for (int id : rung_ids_) DBSCALE_CHECK(id >= 0);
}

Catalog Catalog::MakeLockStep() {
  return Catalog(LockStepSpecs(), kNumRungs);
}

Catalog Catalog::MakePerDimension(int max_dimension_steps) {
  DBSCALE_CHECK(max_dimension_steps >= 1);
  std::vector<ContainerSpec> specs = LockStepSpecs();
  for (int i = 0; i < kNumRungs; ++i) {
    for (ResourceKind kind : kAllResources) {
      for (int step = 1; step <= max_dimension_steps; ++step) {
        int j = i + step;
        if (j >= kNumRungs) break;
        ContainerSpec spec;
        spec.name = StrFormat("S%d-%s+%d", i + 1,
                              ResourceKindToString(kind), step);
        spec.resources = RungResources(i);
        spec.resources.Set(kind, RungResources(j).Get(kind));
        spec.price_per_interval =
            kRungs[i].price +
            (kRungs[j].price - kRungs[i].price) * DimensionWeight(kind);
        spec.base_rung = i;
        specs.push_back(std::move(spec));
      }
    }
  }
  return Catalog(std::move(specs), kNumRungs);
}

Result<Catalog> Catalog::FromSpecs(std::vector<ContainerSpec> specs) {
  if (specs.empty()) {
    return Status::InvalidArgument("catalog needs at least one container");
  }
  // Treat every spec as its own rung when built from explicit specs.
  std::stable_sort(specs.begin(), specs.end(),
                   [](const ContainerSpec& a, const ContainerSpec& b) {
                     return a.price_per_interval < b.price_per_interval;
                   });
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].base_rung = static_cast<int>(i);
    if (specs[i].name.empty()) specs[i].name = StrFormat("C%zu", i + 1);
    // Rung detection keys off '-'; explicit specs become rungs as-is.
    DBSCALE_CHECK(specs[i].name.find('-') == std::string::npos);
  }
  return Catalog(std::move(specs), static_cast<int>(specs.size()));
}

const ContainerSpec& Catalog::at(int id) const {
  DBSCALE_CHECK(id >= 0 && id < size());
  return specs_[static_cast<size_t>(id)];
}

const ContainerSpec& Catalog::largest() const {
  // The largest container is the most expensive lock-step rung: it dominates
  // every variant.
  return specs_[static_cast<size_t>(rung_ids_.back())];
}

const ContainerSpec& Catalog::rung(int rung_index) const {
  DBSCALE_CHECK(rung_index >= 0 && rung_index < num_rungs_);
  return specs_[static_cast<size_t>(
      rung_ids_[static_cast<size_t>(rung_index)])];
}

Result<ContainerSpec> Catalog::CheapestDominating(
    const ResourceVector& demand, double budget) const {
  for (const ContainerSpec& spec : specs_) {
    if (spec.price_per_interval <= budget &&
        spec.resources.Dominates(demand)) {
      return spec;
    }
  }
  // Demand cannot be met within budget: fall back to the most expensive
  // affordable container (paper Section 6).
  return MostExpensiveWithin(budget);
}

ContainerSpec Catalog::CheapestDominating(const ResourceVector& demand) const {
  for (const ContainerSpec& spec : specs_) {
    if (spec.resources.Dominates(demand)) return spec;
  }
  return largest();
}

Result<ContainerSpec> Catalog::MostExpensiveWithin(double budget) const {
  for (auto it = specs_.rbegin(); it != specs_.rend(); ++it) {
    if (it->price_per_interval <= budget) return *it;
  }
  return Status::ResourceExhausted(
      StrFormat("no container fits budget %.2f (smallest costs %.2f)",
                budget, specs_.front().price_per_interval));
}

int Catalog::RungForDemand(const ResourceVector& demand) const {
  for (int r = 0; r < num_rungs_; ++r) {
    if (rung(r).resources.Dominates(demand)) return r;
  }
  return num_rungs_ - 1;
}

int Catalog::ClampRung(int rung_index) const {
  return std::clamp(rung_index, 0, num_rungs_ - 1);
}

Result<ContainerSpec> Catalog::FindByName(const std::string& name) const {
  for (const ContainerSpec& spec : specs_) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound(StrFormat("no container named '%s'", name.c_str()));
}

}  // namespace dbscale::container
