#include "src/container/catalog.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/string_util.h"

namespace dbscale::container {

namespace {

struct Rung {
  double cpu_cores;
  double memory_mb;
  double disk_iops;
  double log_mbps;
  double price;
};

// Eleven lock-step sizes, shaped after the 2016-era commercial catalogs the
// paper describes: 0.5 cores to 32 cores, ~1 GB to ~192 GB, 50 to 10000
// IOPS, price 7..270 units per billing interval. S4's memory (4 GB) and
// S3's (2.5 GB) bracket the 3 GB working set of the Figure 14 ballooning
// experiment.
constexpr Rung kRungs[] = {
    {0.5, 1024.0, 50.0, 2.0, 7.0},        // S1
    {1.0, 1536.0, 100.0, 4.0, 15.0},      // S2
    {2.0, 2560.0, 200.0, 8.0, 30.0},      // S3
    {3.0, 4096.0, 300.0, 12.0, 45.0},     // S4
    {4.0, 8192.0, 500.0, 20.0, 60.0},     // S5
    {6.0, 16384.0, 800.0, 32.0, 90.0},    // S6
    {8.0, 24576.0, 1200.0, 48.0, 120.0},  // S7
    {12.0, 49152.0, 2000.0, 80.0, 150.0},  // S8
    {16.0, 98304.0, 3500.0, 120.0, 180.0},  // S9
    {24.0, 147456.0, 6000.0, 200.0, 240.0},  // S10
    {32.0, 196608.0, 10000.0, 300.0, 270.0},  // S11
};
constexpr int kNumRungs = static_cast<int>(std::size(kRungs));

// Share of a rung's price attributed to each dimension; used to price
// single-dimension variants and the flexible catalog's separable model.
double DimensionWeight(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu:
      return 0.40;
    case ResourceKind::kMemory:
      return 0.25;
    case ResourceKind::kDiskIo:
      return 0.25;
    case ResourceKind::kLogIo:
      return 0.10;
  }
  return 0.0;
}

// Splits `price` into per-dimension components: weight shares for the
// first three dimensions, the exact residual for the last. Summed back in
// dimension order the components reproduce `price` bit-for-bit (the
// residual subtraction is exact by Sterbenz's lemma — the partial sum is
// within a factor of two of the total — so the final addition rounds to
// the representable true value).
std::array<double, kNumResources> SplitPrice(double price) {
  std::array<double, kNumResources> parts{};
  double partial = 0.0;
  for (int d = 0; d < kNumResources - 1; ++d) {
    parts[static_cast<size_t>(d)] =
        DimensionWeight(static_cast<ResourceKind>(d)) * price;
    partial += parts[static_cast<size_t>(d)];
  }
  parts[kNumResources - 1] = price - partial;
  return parts;
}

ResourceVector RungResources(int i) {
  return ResourceVector{kRungs[i].cpu_cores, kRungs[i].memory_mb,
                        kRungs[i].disk_iops, kRungs[i].log_mbps};
}

std::vector<ContainerSpec> LockStepSpecs(int num_rungs, double markup) {
  std::vector<ContainerSpec> specs;
  specs.reserve(static_cast<size_t>(num_rungs));
  for (int i = 0; i < num_rungs; ++i) {
    ContainerSpec spec;
    spec.name = StrFormat("S%d", i + 1);
    spec.resources = RungResources(i);
    spec.price_per_interval = kRungs[i].price * markup;
    spec.base_rung = i;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<ContainerSpec> LockStepSpecs() {
  return LockStepSpecs(kNumRungs, 1.0);
}

}  // namespace

// ---------------------------------------------------------------------------
// CatalogBackend
// ---------------------------------------------------------------------------

CatalogBackend::CatalogBackend(std::vector<ContainerSpec> specs,
                               int num_rungs)
    : specs_(std::move(specs)), num_rungs_(num_rungs) {
  // Price order with a deterministic name tie-break.
  std::stable_sort(specs_.begin(), specs_.end(),
                   [](const ContainerSpec& a, const ContainerSpec& b) {
                     if (a.price_per_interval != b.price_per_interval) {
                       return a.price_per_interval < b.price_per_interval;
                     }
                     return a.name < b.name;
                   });
  rung_ids_.assign(static_cast<size_t>(num_rungs_), -1);
  for (size_t i = 0; i < specs_.size(); ++i) {
    specs_[i].id = static_cast<int>(i);
    // Lock-step rungs are the specs named "S<k>" (no variant suffix).
    if (specs_[i].name.find('-') == std::string::npos) {
      rung_ids_[static_cast<size_t>(specs_[i].base_rung)] =
          static_cast<int>(i);
    }
  }
  for (int id : rung_ids_) DBSCALE_CHECK(id >= 0);
}

const ContainerSpec& CatalogBackend::rung(int rung_index) const {
  DBSCALE_CHECK(rung_index >= 0 && rung_index < num_rungs_);
  return specs_[static_cast<size_t>(
      rung_ids_[static_cast<size_t>(rung_index)])];
}

const ContainerSpec& CatalogBackend::largest() const {
  // The largest container is the most expensive lock-step rung: it dominates
  // every variant.
  return specs_[static_cast<size_t>(rung_ids_.back())];
}

// ---------------------------------------------------------------------------
// FixedRungCatalog
// ---------------------------------------------------------------------------

FixedRungCatalog::FixedRungCatalog(std::vector<ContainerSpec> specs,
                                   int num_rungs)
    : CatalogBackend(std::move(specs), num_rungs) {
  for (int r = 0; r < num_rungs_; ++r) {
    const std::array<double, kNumResources> parts =
        SplitPrice(rung(r).price_per_interval);
    for (int d = 0; d < kNumResources; ++d) {
      dim_price_[static_cast<size_t>(d)].push_back(
          parts[static_cast<size_t>(d)]);
    }
  }
}

int FixedRungCatalog::GridSize(ResourceKind /*kind*/) const {
  return num_rungs_;
}

double FixedRungCatalog::GridValue(ResourceKind kind, int level) const {
  DBSCALE_CHECK(level >= 0 && level < num_rungs_);
  return rung(level).resources.Get(kind);
}

double FixedRungCatalog::DimensionPrice(ResourceKind kind, int level) const {
  DBSCALE_CHECK(level >= 0 && level < num_rungs_);
  return dim_price_[static_cast<size_t>(kind)][static_cast<size_t>(level)];
}

ContainerSpec FixedRungCatalog::BundleAt(const GridLevels& levels) const {
  ResourceVector bundle;
  for (ResourceKind kind : kAllResources) {
    bundle.Set(kind, GridValue(kind, levels[static_cast<size_t>(kind)]));
  }
  // A fixed catalog only sells listed containers: the cheapest dominating
  // spec is the purchasable form of the bundle.
  for (const ContainerSpec& spec : specs_) {
    if (spec.resources.Dominates(bundle)) return spec;
  }
  return largest();
}

// ---------------------------------------------------------------------------
// FlexibleCatalog
// ---------------------------------------------------------------------------

Status FlexibleCatalogOptions::Validate() const {
  if (max_rungs != 0 && (max_rungs < 2 || max_rungs > kNumRungs)) {
    return Status::InvalidArgument(
        StrFormat("max_rungs must be 0 (all) or in [2, %d]", kNumRungs));
  }
  if (subdivisions < 0 || subdivisions > 3) {
    return Status::InvalidArgument("subdivisions must be in [0, 3]");
  }
  if (!(price_markup > 0.0)) {
    return Status::InvalidArgument("price_markup must be > 0");
  }
  const int rungs = max_rungs == 0 ? kNumRungs : max_rungs;
  const int grid = (rungs - 1) * (subdivisions + 1) + 1;
  if (grid > kMaxGridLevels) {
    return Status::InvalidArgument(
        StrFormat("grid of %d levels exceeds kMaxGridLevels=%d", grid,
                  kMaxGridLevels));
  }
  return Status::OK();
}

// Validation happens in Catalog::MakeFlexible (the public entry point);
// the constructor documents the precondition instead of double-checking.
// dbscale-lint: allow(options-validate)
FlexibleCatalog::FlexibleCatalog(const FlexibleCatalogOptions& options)
    : CatalogBackend(
          LockStepSpecs(options.max_rungs == 0 ? kNumRungs : options.max_rungs,
                        options.price_markup),
          options.max_rungs == 0 ? kNumRungs : options.max_rungs),
      coupled_(options.coupled),
      subdivisions_(options.subdivisions) {
  grid_size_ = (num_rungs_ - 1) * (subdivisions_ + 1) + 1;
  DBSCALE_CHECK(grid_size_ <= kMaxGridLevels);
  const int step = subdivisions_ + 1;
  for (int r = 0; r < num_rungs_; ++r) {
    const std::array<double, kNumResources> parts =
        SplitPrice(kRungs[r].price * options.price_markup);
    for (ResourceKind kind : kAllResources) {
      const size_t d = static_cast<size_t>(kind);
      const int base = r * step;
      // Rung points carry the rung value/component exactly; interior
      // points interpolate linearly toward the next rung.
      grid_value_[d][static_cast<size_t>(base)] =
          RungResources(r).Get(kind);
      dim_price_[d][static_cast<size_t>(base)] = parts[d];
      if (r + 1 < num_rungs_) {
        const double v0 = RungResources(r).Get(kind);
        const double v1 = RungResources(r + 1).Get(kind);
        const std::array<double, kNumResources> next =
            SplitPrice(kRungs[r + 1].price * options.price_markup);
        for (int k = 1; k <= subdivisions_; ++k) {
          const double t = static_cast<double>(k) / step;
          grid_value_[d][static_cast<size_t>(base + k)] = v0 + (v1 - v0) * t;
          dim_price_[d][static_cast<size_t>(base + k)] =
              parts[d] + (next[d] - parts[d]) * t;
        }
      }
    }
  }
  // The separable model must be monotone: a higher level in any dimension
  // never costs less (the optimizer's pruning depends on it).
  for (ResourceKind kind : kAllResources) {
    const size_t d = static_cast<size_t>(kind);
    for (int l = 1; l < grid_size_; ++l) {
      DBSCALE_CHECK(dim_price_[d][static_cast<size_t>(l)] >=
                    dim_price_[d][static_cast<size_t>(l - 1)]);
      DBSCALE_CHECK(grid_value_[d][static_cast<size_t>(l)] >=
                    grid_value_[d][static_cast<size_t>(l - 1)]);
    }
  }
}

double FlexibleCatalog::GridValue(ResourceKind kind, int level) const {
  DBSCALE_CHECK(level >= 0 && level < grid_size_);
  return grid_value_[static_cast<size_t>(kind)][static_cast<size_t>(level)];
}

double FlexibleCatalog::DimensionPrice(ResourceKind kind, int level) const {
  DBSCALE_CHECK(level >= 0 && level < grid_size_);
  return dim_price_[static_cast<size_t>(kind)][static_cast<size_t>(level)];
}

ContainerSpec FlexibleCatalog::BundleAt(const GridLevels& levels) const {
  const int step = subdivisions_ + 1;
  bool diagonal_rung = true;
  for (int d = 0; d < kNumResources; ++d) {
    const int l = levels[static_cast<size_t>(d)];
    DBSCALE_CHECK(l >= 0 && l < grid_size_);
    if (l != levels[0] || l % step != 0) diagonal_rung = false;
  }
  if (diagonal_rung) {
    // Lock-step bundles at rung points are the listed specs — same id,
    // name, and exact price as the fixed catalog's rung.
    return rung(levels[0] / step);
  }
  DBSCALE_CHECK(!coupled_);  // coupled mode only sells the diagonal
  ContainerSpec spec;
  // Deterministic synthesized id past the listed specs: the mixed-radix
  // index of the level vector. Distinct bundles get distinct ids, so
  // ScalingDecision::Changed() and rejection cooldowns work unchanged.
  int linear = 0;
  for (int d = 0; d < kNumResources; ++d) {
    linear = linear * grid_size_ + levels[static_cast<size_t>(d)];
  }
  spec.id = size() + linear;
  spec.name = StrFormat("F%d.%d.%d.%d", levels[0], levels[1], levels[2],
                        levels[3]);
  double price = 0.0;
  for (ResourceKind kind : kAllResources) {
    const size_t d = static_cast<size_t>(kind);
    spec.resources.Set(kind, GridValue(kind, levels[d]));
    price += DimensionPrice(kind, levels[d]);
  }
  spec.price_per_interval = price;
  spec.base_rung = num_rungs_ - 1;
  for (int r = 0; r < num_rungs_; ++r) {
    if (rung(r).resources.Dominates(spec.resources)) {
      spec.base_rung = r;
      break;
    }
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Catalog (value handle)
// ---------------------------------------------------------------------------

Catalog::Catalog(std::shared_ptr<const CatalogBackend> backend)
    : backend_(std::move(backend)) {
  DBSCALE_CHECK(backend_ != nullptr);
}

Catalog Catalog::MakeLockStep() {
  return Catalog(
      std::make_shared<const FixedRungCatalog>(LockStepSpecs(), kNumRungs));
}

Catalog Catalog::MakePerDimension(int max_dimension_steps) {
  DBSCALE_CHECK(max_dimension_steps >= 1);
  std::vector<ContainerSpec> specs = LockStepSpecs();
  for (int i = 0; i < kNumRungs; ++i) {
    for (ResourceKind kind : kAllResources) {
      for (int step = 1; step <= max_dimension_steps; ++step) {
        int j = i + step;
        if (j >= kNumRungs) break;
        ContainerSpec spec;
        spec.name = StrFormat("S%d-%s+%d", i + 1,
                              ResourceKindToString(kind), step);
        spec.resources = RungResources(i);
        spec.resources.Set(kind, RungResources(j).Get(kind));
        spec.price_per_interval =
            kRungs[i].price +
            (kRungs[j].price - kRungs[i].price) * DimensionWeight(kind);
        spec.base_rung = i;
        specs.push_back(std::move(spec));
      }
    }
  }
  return Catalog(
      std::make_shared<const FixedRungCatalog>(std::move(specs), kNumRungs));
}

Result<Catalog> Catalog::FromSpecs(std::vector<ContainerSpec> specs) {
  if (specs.empty()) {
    return Status::InvalidArgument("catalog needs at least one container");
  }
  // Treat every spec as its own rung when built from explicit specs.
  std::stable_sort(specs.begin(), specs.end(),
                   [](const ContainerSpec& a, const ContainerSpec& b) {
                     return a.price_per_interval < b.price_per_interval;
                   });
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].base_rung = static_cast<int>(i);
    if (specs[i].name.empty()) specs[i].name = StrFormat("C%zu", i + 1);
    // Rung detection keys off '-'; explicit specs become rungs as-is.
    DBSCALE_CHECK(specs[i].name.find('-') == std::string::npos);
  }
  const int num_rungs = static_cast<int>(specs.size());
  return Catalog(
      std::make_shared<const FixedRungCatalog>(std::move(specs), num_rungs));
}

Result<Catalog> Catalog::MakeFlexible(const FlexibleCatalogOptions& options) {
  DBSCALE_RETURN_IF_ERROR(options.Validate());
  return Catalog(std::make_shared<const FlexibleCatalog>(options));
}

double Catalog::BundlePrice(const GridLevels& levels) const {
  double price = 0.0;
  for (ResourceKind kind : kAllResources) {
    price += backend_->DimensionPrice(kind, levels[static_cast<size_t>(kind)]);
  }
  return price;
}

int Catalog::GridLevelFor(ResourceKind kind, double demand) const {
  const int n = backend_->GridSize(kind);
  for (int l = 0; l < n; ++l) {
    if (backend_->GridValue(kind, l) >= demand) return l;
  }
  return n - 1;
}

int Catalog::GridLevelWithin(ResourceKind kind, double value) const {
  const int n = backend_->GridSize(kind);
  for (int l = n - 1; l > 0; --l) {
    if (backend_->GridValue(kind, l) <= value) return l;
  }
  return 0;
}

const ContainerSpec& Catalog::at(int id) const {
  DBSCALE_CHECK(id >= 0 && id < size());
  return specs()[static_cast<size_t>(id)];
}

Result<ContainerSpec> Catalog::CheapestDominating(
    const ResourceVector& demand, double budget) const {
  for (const ContainerSpec& spec : specs()) {
    if (spec.price_per_interval <= budget &&
        spec.resources.Dominates(demand)) {
      return spec;
    }
  }
  // Demand cannot be met within budget: fall back to the most expensive
  // affordable container (paper Section 6).
  return MostExpensiveWithin(budget);
}

ContainerSpec Catalog::CheapestDominating(const ResourceVector& demand) const {
  for (const ContainerSpec& spec : specs()) {
    if (spec.resources.Dominates(demand)) return spec;
  }
  return largest();
}

Result<ContainerSpec> Catalog::MostExpensiveWithin(double budget) const {
  const std::vector<ContainerSpec>& all = specs();
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    if (it->price_per_interval <= budget) return *it;
  }
  return Status::ResourceExhausted(
      StrFormat("no container fits budget %.2f (smallest costs %.2f)",
                budget, all.front().price_per_interval));
}

int Catalog::RungForDemand(const ResourceVector& demand) const {
  for (int r = 0; r < num_rungs(); ++r) {
    if (rung(r).resources.Dominates(demand)) return r;
  }
  return num_rungs() - 1;
}

int Catalog::ClampRung(int rung_index) const {
  return std::clamp(rung_index, 0, num_rungs() - 1);
}

Result<ContainerSpec> Catalog::FindByName(const std::string& name) const {
  for (const ContainerSpec& spec : specs()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound(StrFormat("no container named '%s'", name.c_str()));
}

}  // namespace dbscale::container
