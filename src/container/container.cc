#include "src/container/container.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/string_util.h"

namespace dbscale::container {

const char* ResourceKindToString(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu:
      return "cpu";
    case ResourceKind::kMemory:
      return "memory";
    case ResourceKind::kDiskIo:
      return "disk_io";
    case ResourceKind::kLogIo:
      return "log_io";
  }
  return "?";
}

double ResourceVector::Get(ResourceKind kind) const {
  switch (kind) {
    case ResourceKind::kCpu:
      return cpu_cores;
    case ResourceKind::kMemory:
      return memory_mb;
    case ResourceKind::kDiskIo:
      return disk_iops;
    case ResourceKind::kLogIo:
      return log_mbps;
  }
  DBSCALE_CHECK(false);
  return 0.0;
}

void ResourceVector::Set(ResourceKind kind, double value) {
  switch (kind) {
    case ResourceKind::kCpu:
      cpu_cores = value;
      return;
    case ResourceKind::kMemory:
      memory_mb = value;
      return;
    case ResourceKind::kDiskIo:
      disk_iops = value;
      return;
    case ResourceKind::kLogIo:
      log_mbps = value;
      return;
  }
  DBSCALE_CHECK(false);
}

bool ResourceVector::Dominates(const ResourceVector& other) const {
  return cpu_cores >= other.cpu_cores && memory_mb >= other.memory_mb &&
         disk_iops >= other.disk_iops && log_mbps >= other.log_mbps;
}

ResourceVector ResourceVector::Max(const ResourceVector& a,
                                   const ResourceVector& b) {
  return ResourceVector{
      std::max(a.cpu_cores, b.cpu_cores), std::max(a.memory_mb, b.memory_mb),
      std::max(a.disk_iops, b.disk_iops), std::max(a.log_mbps, b.log_mbps)};
}

ResourceVector ResourceVector::Min(const ResourceVector& a,
                                   const ResourceVector& b) {
  return ResourceVector{
      std::min(a.cpu_cores, b.cpu_cores), std::min(a.memory_mb, b.memory_mb),
      std::min(a.disk_iops, b.disk_iops), std::min(a.log_mbps, b.log_mbps)};
}

ResourceVector ResourceVector::Scaled(double factor) const {
  return ResourceVector{cpu_cores * factor, memory_mb * factor,
                        disk_iops * factor, log_mbps * factor};
}

double ResourceVector::Sum() const {
  return ((cpu_cores + memory_mb) + disk_iops) + log_mbps;
}

bool ResourceVector::AnyPositive() const {
  return cpu_cores > 0.0 || memory_mb > 0.0 || disk_iops > 0.0 ||
         log_mbps > 0.0;
}

void ResourceVector::Fold(Fnv64Stream* stream) const {
  stream->Dbl(cpu_cores);
  stream->Dbl(memory_mb);
  stream->Dbl(disk_iops);
  stream->Dbl(log_mbps);
}

std::string ResourceVector::ToString() const {
  return StrFormat("{cpu=%.2f cores, mem=%.0f MB, disk=%.0f IOPS, "
                   "log=%.1f MB/s}",
                   cpu_cores, memory_mb, disk_iops, log_mbps);
}

std::string ContainerSpec::ToString() const {
  return StrFormat("%s %s @%.1f units/interval", name.c_str(),
                   resources.ToString().c_str(), price_per_interval);
}

}  // namespace dbscale::container
