// Resource containers (Section 2.1 of the paper).
//
// A DaaS offers a catalog of container sizes; each guarantees a fixed
// resource bundle (CPU cores, memory, disk IOPS, log bandwidth) at a fixed
// price per billing interval. A tenant database runs inside exactly one
// container at a time and the auto-scaler's output is a container choice.

#ifndef DBSCALE_CONTAINER_CONTAINER_H_
#define DBSCALE_CONTAINER_CONTAINER_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/fnv.h"

namespace dbscale::container {

/// The resource dimensions a container guarantees. Matches the classes the
/// paper's estimator reasons about individually.
enum class ResourceKind : int {
  kCpu = 0,     // cores
  kMemory = 1,  // MB of buffer/workspace memory
  kDiskIo = 2,  // IOPS
  kLogIo = 3,   // MB/s of log write bandwidth
};

inline constexpr int kNumResources = 4;
inline constexpr std::array<ResourceKind, kNumResources> kAllResources = {
    ResourceKind::kCpu, ResourceKind::kMemory, ResourceKind::kDiskIo,
    ResourceKind::kLogIo};

const char* ResourceKindToString(ResourceKind kind);

/// \brief A point in the 4-dimensional resource space.
struct ResourceVector {
  double cpu_cores = 0.0;
  double memory_mb = 0.0;
  double disk_iops = 0.0;
  double log_mbps = 0.0;

  double Get(ResourceKind kind) const;
  void Set(ResourceKind kind, double value);

  /// True when this bundle is >= `other` in every dimension.
  bool Dominates(const ResourceVector& other) const;

  /// Element-wise maximum.
  static ResourceVector Max(const ResourceVector& a, const ResourceVector& b);

  /// Element-wise minimum.
  static ResourceVector Min(const ResourceVector& a, const ResourceVector& b);

  /// Element-wise scale.
  ResourceVector Scaled(double factor) const;

  /// Sum of the four components (dimension-order left fold).
  double Sum() const;

  /// True when at least one component is > 0 (a non-empty demand vector).
  bool AnyPositive() const;

  /// Folds the four components into an FNV-1a stream (bit patterns, in
  /// dimension order) — the digest primitive the fleet/host accounting
  /// digests are built from.
  void Fold(Fnv64Stream* stream) const;

  bool operator==(const ResourceVector& other) const = default;

  std::string ToString() const;
};

/// \brief One entry of a DaaS catalog: a named resource bundle with a price
/// per billing interval (abstract "cost units", as in the paper's 7..270).
struct ContainerSpec {
  /// Dense id within its catalog (also the preference order by price).
  int id = 0;
  /// Display name, e.g. "S3" or "S3-cpu+2".
  std::string name;
  ResourceVector resources;
  double price_per_interval = 0.0;
  /// Index of the lock-step rung this container is based on; variants that
  /// scale a single dimension keep their base rung here.
  int base_rung = 0;

  bool operator==(const ContainerSpec& other) const {
    return id == other.id && name == other.name &&
           resources == other.resources &&
           price_per_interval == other.price_per_interval &&
           base_rung == other.base_rung;
  }

  std::string ToString() const;
};

}  // namespace dbscale::container

#endif  // DBSCALE_CONTAINER_CONTAINER_H_
