// Container catalogs and container search.
//
// The default catalog mirrors the paper's experimental setup: eleven
// lock-step sizes spanning half a core to 32 cores, priced from 7 to 270
// cost units per billing interval (three-plus orders of magnitude of
// resources, ~40x in price — the paper notes three orders of magnitude of
// *cost* across the full Azure catalog; we keep its experimental 7..270
// range).
//
// A per-dimension catalog (Figure 1) additionally offers, for every
// lock-step rung, variants that scale one resource dimension up while the
// others stay at the rung — "high CPU" / "high memory" / "high I/O"
// instances. Workloads with demand concentrated in one resource pick these
// up at a lower price than the next full rung.

#ifndef DBSCALE_CONTAINER_CATALOG_H_
#define DBSCALE_CONTAINER_CATALOG_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/container/container.h"

namespace dbscale::container {

/// \brief An immutable, price-ordered set of ContainerSpecs with search
/// operations used by the scaling policies.
class Catalog {
 public:
  /// The paper-style lock-step catalog: 11 sizes S1..S11; every dimension
  /// scales proportionally; price 7..270 units.
  static Catalog MakeLockStep();

  /// Lock-step rungs plus single-dimension scale-ups per Figure 1.
  /// `max_dimension_steps` limits how many rungs above its base a variant's
  /// boosted dimension may reach (2 covers the paper's 98% of changes).
  static Catalog MakePerDimension(int max_dimension_steps = 2);

  /// Builds a catalog from explicit specs (ids are reassigned in price
  /// order). Errors if `specs` is empty.
  static Result<Catalog> FromSpecs(std::vector<ContainerSpec> specs);

  int size() const { return static_cast<int>(specs_.size()); }
  const ContainerSpec& at(int id) const;
  const std::vector<ContainerSpec>& specs() const { return specs_; }

  const ContainerSpec& smallest() const { return specs_.front(); }
  const ContainerSpec& largest() const;

  /// Number of lock-step rungs (base sizes) in this catalog.
  int num_rungs() const { return num_rungs_; }
  /// The lock-step rung container at the given rung index [0, num_rungs).
  const ContainerSpec& rung(int rung_index) const;

  /// Cheapest container whose resources dominate `demand` and whose price is
  /// <= `budget`. If no dominating container fits the budget, returns the
  /// most expensive container within budget (the paper's budget-constrained
  /// fallback). Errors only if even the smallest container exceeds `budget`.
  Result<ContainerSpec> CheapestDominating(const ResourceVector& demand,
                                           double budget) const;

  /// Cheapest container dominating `demand`, ignoring budget; the largest
  /// container if none dominates.
  ContainerSpec CheapestDominating(const ResourceVector& demand) const;

  /// Most expensive container with price <= budget. Errors if none.
  Result<ContainerSpec> MostExpensiveWithin(double budget) const;

  /// Smallest rung whose resources dominate `demand`; num_rungs()-1 if none.
  int RungForDemand(const ResourceVector& demand) const;

  /// The rung `steps` above/below `rung_index`, clamped to the catalog.
  int ClampRung(int rung_index) const;

  /// Finds a container by name.
  Result<ContainerSpec> FindByName(const std::string& name) const;

 private:
  Catalog(std::vector<ContainerSpec> specs, int num_rungs);

  std::vector<ContainerSpec> specs_;  // ascending price
  std::vector<int> rung_ids_;         // specs_ index of each lock-step rung
  int num_rungs_ = 0;
};

}  // namespace dbscale::container

#endif  // DBSCALE_CONTAINER_CATALOG_H_
