// Container catalogs and container search.
//
// The default catalog mirrors the paper's experimental setup: eleven
// lock-step sizes spanning half a core to 32 cores, priced from 7 to 270
// cost units per billing interval (three-plus orders of magnitude of
// resources, ~40x in price — the paper notes three orders of magnitude of
// *cost* across the full Azure catalog; we keep its experimental 7..270
// range).
//
// A per-dimension catalog (Figure 1) additionally offers, for every
// lock-step rung, variants that scale one resource dimension up while the
// others stay at the rung — "high CPU" / "high memory" / "high I/O"
// instances. Workloads with demand concentrated in one resource pick these
// up at a lower price than the next full rung.
//
// `Catalog` is a value handle over an immutable `CatalogBackend`:
//
//   * `FixedRungCatalog` — the paper's finite container list. Its spec
//     ordering, ids, and every search result are bit-identical to the
//     pre-backend concrete Catalog (the "exact-equality contract": digests
//     pinned before this interface existed must not move).
//   * `FlexibleCatalog` — a synthetic per-dimension offer grid for the
//     diagonal-scaling model (PAPERS.md, arxiv 2511.21612): any combination
//     of per-dimension grid values is purchasable, priced by a separable
//     model (per-dimension price components that sum exactly to the
//     lock-step rung price on the diagonal).
//
// The handle keeps the original search surface (all existing policies
// compile and behave unchanged) and adds the per-dimension grid surface
// the diagonal optimizer enumerates.

#ifndef DBSCALE_CONTAINER_CATALOG_H_
#define DBSCALE_CONTAINER_CATALOG_H_

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/container/container.h"

namespace dbscale::container {

/// Per-dimension grid levels identifying one purchasable bundle.
using GridLevels = std::array<int, kNumResources>;

/// Upper bound on per-dimension grid sizes (11 rungs, <= 3 subdivisions
/// between adjacent rungs: 10 * 4 + 1 = 41); sized so optimizer state fits
/// in fixed arrays.
inline constexpr int kMaxGridLevels = 41;

/// \brief Immutable offer set behind a Catalog handle: a price-ordered
/// spec list plus a per-dimension offer grid.
///
/// The constructor price-sorts the listed specs with a deterministic name
/// tie-break and assigns dense ids — the iteration order every search
/// method and fingerprint depends on.
class CatalogBackend {
 public:
  virtual ~CatalogBackend() = default;

  /// Stable backend name ("fixed_rung", "flexible") for reports/JSON.
  virtual const char* backend_name() const = 0;

  /// True when ANY combination of per-dimension grid values is purchasable
  /// (the diagonal optimizer then searches the grid instead of the listed
  /// specs).
  virtual bool flexible() const = 0;

  /// Per-dimension offer grid, ascending. Fixed backends expose the
  /// lock-step rung values; flexible backends the synthetic grid.
  virtual int GridSize(ResourceKind kind) const = 0;
  virtual double GridValue(ResourceKind kind, int level) const = 0;

  /// Additive per-dimension price component. For flexible backends the
  /// purchase price of a bundle is exactly the dimension-order sum of its
  /// components; for fixed backends this is the separable approximation
  /// used to price single-dimension variants (informational).
  virtual double DimensionPrice(ResourceKind kind, int level) const = 0;

  /// The purchasable container at the given per-dimension grid levels.
  /// Flexible backends synthesize a spec (deterministic id past the listed
  /// specs) for off-diagonal bundles; fixed backends return the cheapest
  /// listed spec dominating the bundle.
  virtual ContainerSpec BundleAt(const GridLevels& levels) const = 0;

  const std::vector<ContainerSpec>& specs() const { return specs_; }
  int size() const { return static_cast<int>(specs_.size()); }
  int num_rungs() const { return num_rungs_; }
  const ContainerSpec& rung(int rung_index) const;
  const ContainerSpec& largest() const;

 protected:
  CatalogBackend(std::vector<ContainerSpec> specs, int num_rungs);

  std::vector<ContainerSpec> specs_;  // ascending price
  std::vector<int> rung_ids_;         // specs_ index of each lock-step rung
  int num_rungs_ = 0;
};

/// \brief The paper's finite container list (lock-step rungs, optionally
/// with single-dimension variants). Behavior is bit-identical to the
/// pre-backend concrete Catalog.
class FixedRungCatalog final : public CatalogBackend {
 public:
  /// `specs` must contain one lock-step rung spec (name without '-') for
  /// every base_rung in [0, num_rungs).
  FixedRungCatalog(std::vector<ContainerSpec> specs, int num_rungs);

  const char* backend_name() const override { return "fixed_rung"; }
  bool flexible() const override { return false; }
  int GridSize(ResourceKind kind) const override;
  double GridValue(ResourceKind kind, int level) const override;
  double DimensionPrice(ResourceKind kind, int level) const override;
  ContainerSpec BundleAt(const GridLevels& levels) const override;

 private:
  /// Separable price components of each rung's price: weight-shares with
  /// the last dimension taking the residual, so the dimension-order sum
  /// reproduces the rung price exactly.
  std::array<std::vector<double>, kNumResources> dim_price_;
};

/// Options for the synthetic flexible (diagonal-scaling) catalog.
struct FlexibleCatalogOptions {
  /// Number of paper rungs to span (0 = all 11; else [2, 11]).
  int max_rungs = 0;
  /// Extra grid points inserted between adjacent rungs in every dimension
  /// (linear interpolation of values and price components); [0, 3].
  int subdivisions = 0;
  /// Multiplier on every price (flexibility premium / discount); > 0.
  double price_markup = 1.0;
  /// Restrict offers to the lock-step diagonal: the backend then reports
  /// flexible() == false and its listed specs are exactly the rungs —
  /// with price_markup == 1 this is bit-identical to MakeLockStep()
  /// (the catalog-backend equivalence contract).
  bool coupled = false;

  Status Validate() const;
};

/// \brief Synthetic per-dimension offer grid with a separable pricing
/// model. Listed specs are the lock-step diagonal bundles (named "S<k>",
/// priced exactly at markup x rung price); every other grid combination is
/// purchasable through BundleAt with a deterministic synthesized id.
class FlexibleCatalog final : public CatalogBackend {
 public:
  /// `options` must already be validated.
  explicit FlexibleCatalog(const FlexibleCatalogOptions& options);

  const char* backend_name() const override { return "flexible"; }
  bool flexible() const override { return !coupled_; }
  int GridSize(ResourceKind /*kind*/) const override { return grid_size_; }
  double GridValue(ResourceKind kind, int level) const override;
  double DimensionPrice(ResourceKind kind, int level) const override;
  ContainerSpec BundleAt(const GridLevels& levels) const override;

 private:
  bool coupled_ = false;
  int subdivisions_ = 0;
  int grid_size_ = 0;  // same in every dimension
  std::array<std::array<double, kMaxGridLevels>, kNumResources> grid_value_{};
  std::array<std::array<double, kMaxGridLevels>, kNumResources> dim_price_{};
};

/// \brief Copyable value handle over an immutable, price-ordered set of
/// ContainerSpecs with the search operations used by the scaling policies.
class Catalog {
 public:
  /// The paper-style lock-step catalog: 11 sizes S1..S11; every dimension
  /// scales proportionally; price 7..270 units.
  static Catalog MakeLockStep();

  /// Lock-step rungs plus single-dimension scale-ups per Figure 1.
  /// `max_dimension_steps` limits how many rungs above its base a variant's
  /// boosted dimension may reach (2 covers the paper's 98% of changes).
  static Catalog MakePerDimension(int max_dimension_steps = 2);

  /// Builds a catalog from explicit specs (ids are reassigned in price
  /// order). Errors if `specs` is empty.
  static Result<Catalog> FromSpecs(std::vector<ContainerSpec> specs);

  /// Builds the synthetic flexible catalog. Errors on invalid options.
  static Result<Catalog> MakeFlexible(const FlexibleCatalogOptions& options =
                                          FlexibleCatalogOptions{});

  /// The backend this handle wraps (never null).
  const CatalogBackend& backend() const { return *backend_; }

  // ---- Per-dimension grid surface (diagonal scaling) ----
  bool flexible() const { return backend_->flexible(); }
  int GridSize(ResourceKind kind) const { return backend_->GridSize(kind); }
  double GridValue(ResourceKind kind, int level) const {
    return backend_->GridValue(kind, level);
  }
  double DimensionPrice(ResourceKind kind, int level) const {
    return backend_->DimensionPrice(kind, level);
  }
  /// Dimension-order sum of the per-dimension price components.
  double BundlePrice(const GridLevels& levels) const;
  ContainerSpec BundleAt(const GridLevels& levels) const {
    return backend_->BundleAt(levels);
  }
  /// Smallest grid level whose value meets `demand`; GridSize-1 if none.
  int GridLevelFor(ResourceKind kind, double demand) const;
  /// Largest grid level whose value is <= `value`; 0 if even level 0
  /// exceeds it (the "cover" level of an existing allocation).
  int GridLevelWithin(ResourceKind kind, double value) const;

  // ---- Listed-spec surface (unchanged from the concrete Catalog) ----
  int size() const { return backend_->size(); }
  const ContainerSpec& at(int id) const;
  const std::vector<ContainerSpec>& specs() const {
    return backend_->specs();
  }

  const ContainerSpec& smallest() const { return specs().front(); }
  const ContainerSpec& largest() const { return backend_->largest(); }

  /// Number of lock-step rungs (base sizes) in this catalog.
  int num_rungs() const { return backend_->num_rungs(); }
  /// The lock-step rung container at the given rung index [0, num_rungs).
  const ContainerSpec& rung(int rung_index) const {
    return backend_->rung(rung_index);
  }

  /// Cheapest container whose resources dominate `demand` and whose price is
  /// <= `budget`. If no dominating container fits the budget, returns the
  /// most expensive container within budget (the paper's budget-constrained
  /// fallback). Errors only if even the smallest container exceeds `budget`.
  Result<ContainerSpec> CheapestDominating(const ResourceVector& demand,
                                           double budget) const;

  /// Cheapest container dominating `demand`, ignoring budget; the largest
  /// container if none dominates.
  ContainerSpec CheapestDominating(const ResourceVector& demand) const;

  /// Most expensive container with price <= budget. Errors if none.
  Result<ContainerSpec> MostExpensiveWithin(double budget) const;

  /// Smallest rung whose resources dominate `demand`; num_rungs()-1 if none.
  int RungForDemand(const ResourceVector& demand) const;

  /// The rung `steps` above/below `rung_index`, clamped to the catalog.
  int ClampRung(int rung_index) const;

  /// Finds a container by name.
  Result<ContainerSpec> FindByName(const std::string& name) const;

 private:
  explicit Catalog(std::shared_ptr<const CatalogBackend> backend);

  std::shared_ptr<const CatalogBackend> backend_;
};

}  // namespace dbscale::container

#endif  // DBSCALE_CONTAINER_CATALOG_H_
