#include "src/sim/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/check.h"
#include "src/common/string_util.h"

namespace dbscale::sim {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  DBSCALE_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  DBSCALE_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
    }
    out += "\n";
    return out;
  };
  std::string out = render_row(header_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) rule += "--";
    rule.append(widths[c], '-');
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::ToCsv() const {
  std::string out = StrJoin(header_, ",") + "\n";
  for (const auto& row : rows_) out += StrJoin(row, ",") + "\n";
  return out;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    return Status::IoError(StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::OK();
}

std::string AsciiChart(const std::vector<double>& values, int height,
                       int max_width) {
  if (values.empty() || height < 1) return "";
  // Downsample to max_width columns by averaging.
  const size_t width =
      std::min<size_t>(values.size(), static_cast<size_t>(max_width));
  std::vector<double> cols(width, 0.0);
  for (size_t c = 0; c < width; ++c) {
    const size_t lo = c * values.size() / width;
    const size_t hi = std::max(lo + 1, (c + 1) * values.size() / width);
    double sum = 0.0;
    for (size_t i = lo; i < hi; ++i) sum += values[i];
    cols[c] = sum / static_cast<double>(hi - lo);
  }
  double vmax = *std::max_element(cols.begin(), cols.end());
  if (vmax <= 0.0) vmax = 1.0;

  std::string out;
  for (int r = height; r >= 1; --r) {
    const double threshold =
        vmax * (static_cast<double>(r) - 0.5) / static_cast<double>(height);
    std::string line;
    for (size_t c = 0; c < width; ++c) {
      line += cols[c] >= threshold ? '#' : ' ';
    }
    out += StrFormat("%8.1f |%s\n", vmax * r / height, line.c_str());
  }
  out += StrFormat("%8s +%s\n", "", std::string(width, '-').c_str());
  return out;
}

}  // namespace dbscale::sim
