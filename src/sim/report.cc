#include "src/sim/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/check.h"
#include "src/common/string_util.h"

namespace dbscale::sim {

// Sink argument by design: the table takes ownership of the cells.
// dbscale-lint: allow(alloc-hot-path)
TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  DBSCALE_CHECK(!header_.empty());
}

// Sink argument by design: the table takes ownership of the cells.
// dbscale-lint: allow(alloc-hot-path)
void TextTable::AddRow(std::vector<std::string> row) {
  DBSCALE_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::AppendTo(std::string& out, ReportScratch* scratch) const {
  ReportScratch local;
  if (scratch == nullptr) scratch = &local;
  std::vector<size_t>& widths = scratch->widths;
  widths.assign(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
    }
    out += "\n";
  };
  append_row(header_);
  for (size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) out += "--";
    out.append(widths[c], '-');
  }
  out += "\n";
  for (const auto& row : rows_) append_row(row);
}

void TextTable::AppendCsvTo(std::string& out) const {
  auto append_joined = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      CsvEscapeTo(row[c], out);
    }
    out += '\n';
  };
  append_joined(header_);
  for (const auto& row : rows_) append_joined(row);
}

// Allocating convenience wrapper; hot callers use AppendTo.
std::string TextTable::ToString() const {
  std::string out;  // dbscale-lint: allow(alloc-hot-path)
  AppendTo(out);
  return out;
}

// Allocating convenience wrapper; hot callers use AppendCsvTo.
std::string TextTable::ToCsv() const {
  std::string out;  // dbscale-lint: allow(alloc-hot-path)
  AppendCsvTo(out);
  return out;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    return Status::IoError(StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::OK();
}

void AsciiChartInto(const std::vector<double>& values, std::string& out,
                    int height, int max_width, ReportScratch* scratch) {
  if (values.empty() || height < 1) return;
  ReportScratch local;
  if (scratch == nullptr) scratch = &local;

  // Downsample to max_width columns by averaging.
  const size_t width =
      std::min<size_t>(values.size(), static_cast<size_t>(max_width));
  std::vector<double>& cols = scratch->chart_cols;
  cols.assign(width, 0.0);
  for (size_t c = 0; c < width; ++c) {
    const size_t lo = c * values.size() / width;
    const size_t hi = std::max(lo + 1, (c + 1) * values.size() / width);
    double sum = 0.0;
    for (size_t i = lo; i < hi; ++i) sum += values[i];
    cols[c] = sum / static_cast<double>(hi - lo);
  }
  double vmax = *std::max_element(cols.begin(), cols.end());
  if (vmax <= 0.0) vmax = 1.0;

  // snprintf into a stack buffer instead of StrFormat: same printf
  // semantics (so the bytes match the historical output) without the
  // temporary std::string per line.
  char buf[64];
  std::string& line = scratch->line;
  for (int r = height; r >= 1; --r) {
    const double threshold =
        vmax * (static_cast<double>(r) - 0.5) / static_cast<double>(height);
    line.clear();
    for (size_t c = 0; c < width; ++c) {
      line += cols[c] >= threshold ? '#' : ' ';
    }
    std::snprintf(buf, sizeof(buf), "%8.1f |", vmax * r / height);
    out += buf;
    out += line;
    out += '\n';
  }
  out.append(8, ' ');
  out += " +";
  out.append(width, '-');
  out += '\n';
}

// Allocating convenience wrapper; hot callers use AsciiChartInto.
std::string AsciiChart(const std::vector<double>& values, int height,
                       int max_width) {
  std::string out;  // dbscale-lint: allow(alloc-hot-path)
  AsciiChartInto(values, out, height, max_width);
  return out;
}

}  // namespace dbscale::sim
