// End-to-end experiment drivers reproducing the paper's Section 7
// methodology:
//
//   1. run the workload under Max (largest container) — the gold standard;
//   2. derive the latency goal as a multiple of Max's latency (the paper
//      uses 1.25x and 5x);
//   3. profile the Max run to configure the offline baselines
//      (Peak / Avg / Trace);
//   4. run every technique against the *same* workload (same seed) and
//      compare 95th-percentile latency and average cost per billing
//      interval.

#ifndef DBSCALE_SIM_EXPERIMENT_H_
#define DBSCALE_SIM_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/scaler/autoscaler.h"
#include "src/sim/simulation.h"

namespace dbscale::sim {

/// One technique's outcome.
struct TechniqueResult {
  std::string name;
  RunResult run;
};

/// The full six-technique comparison for one workload/trace/goal.
struct ComparisonResult {
  scaler::LatencyGoal goal;
  std::vector<TechniqueResult> techniques;

  const TechniqueResult* Find(const std::string& name) const;
  /// Formats the paper-style table (latency row, cost row).
  std::string ToTable() const;
};

struct ComparisonOptions {
  /// goal = goal_factor * latency(Max).
  double goal_factor = 1.25;
  telemetry::LatencyAggregate goal_aggregate =
      telemetry::LatencyAggregate::kP95;
  scaler::Sensitivity sensitivity = scaler::Sensitivity::kMedium;
  scaler::AutoScalerOptions auto_scaler;
  /// Initial rung for the online policies (Util, Auto).
  int online_initial_rung = 3;
  /// Run these subsets only (empty = all six).
  std::vector<std::string> techniques;
  /// Threads for the post-Max technique fan-out (Peak/Avg/Trace/Util/Auto
  /// are independent given the Max profiling run). 0 = process default
  /// (DBSCALE_NUM_THREADS env var, else hardware concurrency); 1 = serial.
  /// The result is identical at any thread count: every technique runs the
  /// same seeded simulation and results are assembled in canonical order.
  int num_threads = 0;
};

/// Names accepted by MakeRegisteredPolicy, in canonical order.
const std::vector<std::string>& RegisteredPolicyNames();

/// Creates a named online policy over `catalog` with the given knobs:
/// "Auto" (the paper's autoscaler), "Util" (utilization baseline; requires
/// knobs.latency_goal), or "Diagonal" (per-dimension demand vectors +
/// budgeted multi-dimensional optimizer). Errors on unknown names, so
/// drill-down benches can take a --policy flag without hand-rolled
/// factories.
[[nodiscard]] Result<std::unique_ptr<scaler::ScalingPolicy>>
MakeRegisteredPolicy(const std::string& name,
                     const container::Catalog& catalog,
                     const scaler::TenantKnobs& knobs);

/// Runs one policy over `base` with the given starting rung.
[[nodiscard]] Result<RunResult> RunWithPolicy(const SimulationOptions& base,
                                              scaler::ScalingPolicy* policy,
                                              int initial_rung);

/// Runs the Max gold standard.
[[nodiscard]] Result<RunResult> RunMax(const SimulationOptions& base);

/// Runs the complete comparison (Max, Peak, Avg, Trace, Util, Auto).
[[nodiscard]] Result<ComparisonResult> RunComparison(
    const SimulationOptions& base, const ComparisonOptions& options);

}  // namespace dbscale::sim

#endif  // DBSCALE_SIM_EXPERIMENT_H_
