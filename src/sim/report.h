// Small report helpers: aligned text tables and CSV emission for the
// experiment binaries.

#ifndef DBSCALE_SIM_REPORT_H_
#define DBSCALE_SIM_REPORT_H_

#include <string>
#include <vector>

#include "src/common/result.h"

namespace dbscale::sim {

/// Reusable buffers for the Append* renderers below. Report rendering runs
/// once per interval inside fleet/experiment loops, so the steady-state
/// path must not allocate: hand the same scratch (and output string) to
/// every call and both reuse their capacity.
struct ReportScratch {
  std::vector<size_t> widths;
  std::vector<double> chart_cols;
  std::string line;
};

/// \brief Column-aligned text table builder.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Appends the padded rendering to `out` (not cleared first). With a
  /// reused scratch and a capacity-retaining `out` the call performs no
  /// allocations beyond growth to the table's high-water size.
  void AppendTo(std::string& out, ReportScratch* scratch = nullptr) const;
  /// Appends the CSV rendering (no padding) to `out`; allocation-free
  /// once `out` has capacity.
  void AppendCsvTo(std::string& out) const;

  /// Renders with columns padded to their widest cell.
  std::string ToString() const;
  /// Renders as CSV (no padding).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes `content` to `path` (creating/truncating).
[[nodiscard]] Status WriteFile(const std::string& path,
                               const std::string& content);

/// AsciiChart appended to `out` (not cleared first); byte-identical to
/// AsciiChart and allocation-free in steady state with a reused scratch.
void AsciiChartInto(const std::vector<double>& values, std::string& out,
                    int height = 8, int max_width = 120,
                    ReportScratch* scratch = nullptr);

/// Renders a sparkline-style ASCII chart of `values` with the given height,
/// for eyeballing trace shapes and container series in bench output.
std::string AsciiChart(const std::vector<double>& values, int height = 8,
                       int max_width = 120);

}  // namespace dbscale::sim

#endif  // DBSCALE_SIM_REPORT_H_
