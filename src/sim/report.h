// Small report helpers: aligned text tables and CSV emission for the
// experiment binaries.

#ifndef DBSCALE_SIM_REPORT_H_
#define DBSCALE_SIM_REPORT_H_

#include <string>
#include <vector>

#include "src/common/result.h"

namespace dbscale::sim {

/// \brief Column-aligned text table builder.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// Renders with columns padded to their widest cell.
  std::string ToString() const;
  /// Renders as CSV (no padding).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes `content` to `path` (creating/truncating).
Status WriteFile(const std::string& path, const std::string& content);

/// Renders a sparkline-style ASCII chart of `values` with the given height,
/// for eyeballing trace shapes and container series in bench output.
std::string AsciiChart(const std::vector<double>& values, int height = 8,
                       int max_width = 120);

}  // namespace dbscale::sim

#endif  // DBSCALE_SIM_REPORT_H_
