#include "src/sim/simulation.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/fault/actuator.h"
#include "src/host/actuation.h"
#include "src/host/host_map.h"
#include "src/host/placement.h"
#include "src/stats/cdf.h"

namespace dbscale::sim {

using container::ResourceKind;

std::vector<container::ResourceVector> RunResult::UsageSeries() const {
  std::vector<container::ResourceVector> out;
  out.reserve(intervals.size());
  for (const IntervalRecord& r : intervals) out.push_back(r.usage);
  return out;
}

double RunResult::LatencyMs(telemetry::LatencyAggregate aggregate) const {
  return aggregate == telemetry::LatencyAggregate::kAverage
             ? latency_avg_ms
             : latency_p95_ms;
}

Simulation::Simulation(SimulationOptions options)
    : options_(std::move(options)) {}

Result<RunResult> Simulation::Run(scaler::ScalingPolicy* policy) {
  if (policy == nullptr) {
    return Status::InvalidArgument("policy must not be null");
  }
  DBSCALE_RETURN_IF_ERROR(options_.workload.Validate());
  if (options_.trace.empty()) {
    return Status::InvalidArgument("trace is empty");
  }
  if (options_.interval_duration < options_.sample_period) {
    return Status::InvalidArgument(
        "interval_duration must be >= sample_period");
  }
  if (options_.initial_rung < 0 ||
      options_.initial_rung >= options_.catalog.num_rungs()) {
    return Status::OutOfRange("initial_rung outside the catalog");
  }
  {
    telemetry::TelemetryManager probe(options_.telemetry);
    DBSCALE_RETURN_IF_ERROR(probe.Validate());
  }
  DBSCALE_RETURN_IF_ERROR(options_.fault.Validate());
  DBSCALE_RETURN_IF_ERROR(options_.host.Validate());

  Rng rng(options_.seed);
  engine::EventQueue events;

  engine::EngineOptions engine_options =
      options_.engine.has_value() ? *options_.engine
                                  : options_.workload.MakeEngineOptions();
  container::ContainerSpec current =
      options_.catalog.rung(options_.initial_rung);

  engine::DatabaseEngine engine(&events, engine_options, current,
                                rng.Fork());
  if (options_.prewarm_buffer_pool) engine.PrewarmBufferPool();

  workload::GeneratorOptions gen_options;
  gen_options.step_duration = options_.interval_duration;
  gen_options.rate_scale = options_.rate_scale;
  gen_options.max_in_flight = options_.max_in_flight;
  gen_options.mode = options_.arrival_mode;
  workload::RequestGenerator generator(&engine, options_.workload,
                                       options_.trace, gen_options,
                                       rng.Fork());

  // Fault stream forked last and ONLY when enabled: a null plan leaves the
  // engine/generator streams — and therefore the whole run — bit-identical
  // to a build without the fault layer.
  fault::FaultPlan fault_plan;
  if (options_.fault.enabled()) {
    fault_plan = fault::FaultPlan(options_.fault, rng.Fork());
  }
  const bool faulty = fault_plan.enabled();
  fault::ResizeActuator actuator(&fault_plan);
  // The placement-aware actuation channel: local resizes pass straight
  // through to the fault actuator; migrations add copy latency + blackout
  // on top of its draws.
  host::ActuationChannel channel(&actuator,
                                 options_.host.migration_latency_intervals,
                                 options_.host.migration_downtime_intervals);
  host::ActuationFeedback feedback;

  // Host plane (optional): the single tenant seed-placed next to the
  // configured background load. Disabled, none of this state exists and
  // the run is bit-identical to a build without the host layer.
  const bool host_enabled = options_.host.enabled();
  std::optional<host::HostMap> host_map;
  std::unique_ptr<host::PlacementPolicy> placement;
  int tenant_host = -1;
  std::vector<double> host_demand;
  double prev_cpu_demand = 0.0;
  if (host_enabled) {
    host_map.emplace(options_.host);
    placement = host::MakePlacementPolicy(options_.host.placement);
    Result<std::vector<int>> placed = host_map->SeedPlace({current});
    if (!placed.ok()) return placed.status();
    tenant_host = placed.value()[0];
    host_demand.assign(static_cast<size_t>(host_map->num_hosts()), 0.0);
  }
  // Last sample that passed ingestion unfaulted; replayed on stale reads.
  telemetry::TelemetrySample last_good;
  bool have_good = false;

  telemetry::TelemetryStore store;
  telemetry::TelemetryManager manager(options_.telemetry);
  // Reused across intervals so Compute stays allocation-free on the hot
  // per-interval path.
  telemetry::SignalScratch signal_scratch;

  // Run- and interval-level latency tracking via the completion listener.
  stats::LatencyHistogram run_latency(0.01, 1e8, 48);
  stats::LatencyHistogram interval_latency(0.01, 1e8, 48);
  uint64_t interval_errors = 0;
  engine.SetCompletionListener(
      [&run_latency, &interval_latency,
       &interval_errors](const engine::RequestResult& r) {
        const double ms = r.latency().ToMillis();
        run_latency.Add(ms);
        interval_latency.Add(ms);
        if (r.error) ++interval_errors;
      });

  RunResult result;
  result.policy_name = policy->name();

  const size_t num_intervals = options_.trace.num_steps();
  result.intervals.reserve(num_intervals);

  // Observability: register the decision-counter block, size the primary
  // shard (setup-time), and build the sink the loop records through.
  obs::Observability* ob = options_.obs;
  obs::Sink sink;
  obs::MetricId decision_base = 0;
  if (ob != nullptr) {
    decision_base = scaler::RegisterDecisionCounters(&ob->registry());
    engine.EnableObservability(ob);
    sink = ob->PrimarySink();
  }

  generator.Start();
  const double samples_per_interval =
      options_.interval_duration / options_.sample_period;
  const int whole_samples =
      std::max(1, static_cast<int>(samples_per_interval));

  SimTime interval_start = SimTime::Zero();
  for (size_t i = 0; i < num_intervals; ++i) {
    const SimTime interval_end =
        interval_start + options_.interval_duration;
    if (ob != nullptr) {
      ob->trace().BeginInterval(static_cast<int>(i), interval_start);
    }

    // Asynchronous actuation lifecycle: an in-flight resize or migration
    // resolves at the START of an interval — the new container (if the
    // actuation succeeded) is in effect, and therefore billed, for the
    // whole interval.
    if (channel.pending()) {
      const bool was_migration =
          channel.request().kind == host::ActuationKind::kMigration;
      const host::ActuationOutcome ev = channel.Tick();
      switch (ev.phase) {
        case host::ActuationPhase::kApplied:
          DBSCALE_CHECK(engine.CompleteResize().ok());
          ++result.container_changes;
          if (host_enabled) {
            if (was_migration) {
              // Cutover: the tenant leaves its source host and lands on
              // the destination under the new container.
              host_map->CompleteMigration(tenant_host, ev.to_host,
                                          current.resources,
                                          ev.target.resources);
              tenant_host = ev.to_host;
              if (sink.pipeline != nullptr) {
                sink.metrics.Add(sink.pipeline->host_migrations_total, 1.0);
              }
            } else {
              host_map->CommitLocal(
                  tenant_host,
                  host::UpDelta(current.resources, ev.target.resources),
                  current.resources, ev.target.resources);
            }
          }
          if (sink.pipeline != nullptr) {
            sink.metrics.Add(sink.pipeline->sim_resizes_total, 1.0);
            sink.metrics.Add(ev.target.base_rung > current.base_rung
                                 ? sink.pipeline->sim_scale_ups_total
                                 : sink.pipeline->sim_scale_downs_total,
                             1.0);
            sink.metrics.Add(sink.pipeline->resize_applies_total, 1.0);
          }
          current = ev.target;
          feedback = ev;
          break;
        case host::ActuationPhase::kFailed:
          DBSCALE_CHECK(engine.AbortResize().ok());
          ++result.resize_failures;
          if (host_enabled) {
            if (was_migration) {
              // Failure is revealed at cutover (the tenant already
              // suffered the blackout); the destination reservation is
              // released, the source accounting was never touched.
              host_map->AbortMigration(ev.to_host, ev.target.resources);
              if (sink.pipeline != nullptr) {
                sink.metrics.Add(
                    sink.pipeline->host_migration_failures_total, 1.0);
              }
            } else {
              host_map->AbortLocal(
                  tenant_host,
                  host::UpDelta(current.resources, ev.target.resources));
            }
          }
          if (sink.pipeline != nullptr) {
            sink.metrics.Add(sink.pipeline->resize_failures_total, 1.0);
          }
          feedback = ev;
          break;
        case host::ActuationPhase::kPending:
          if (sink.pipeline != nullptr) {
            sink.metrics.Add(sink.pipeline->resize_pending_intervals_total,
                             1.0);
          }
          feedback = ev;
          break;
        default:
          break;
      }
    }

    IntervalRecord record;
    record.index = static_cast<int>(i);
    record.container = current;
    record.cost = current.price_per_interval;

    if (host_enabled) {
      // Noisy neighbors: fold the previous interval's CPU demand (clamped
      // to the container) into per-host pressure, then throttle this
      // interval's observed waits accordingly. A tenant inside its own
      // migration blackout is additionally degraded by the downtime
      // factor.
      host_demand.assign(host_demand.size(), 0.0);
      host_demand[static_cast<size_t>(tenant_host)] =
          std::min(prev_cpu_demand, current.resources.cpu_cores);
      host_map->UpdateInterference(host_demand);
      const bool in_downtime = channel.pending() && channel.in_downtime();
      if (in_downtime) {
        host_map->AddDowntimeInterval();
        if (sink.pipeline != nullptr) {
          sink.metrics.Add(
              sink.pipeline->host_migration_downtime_intervals_total, 1.0);
        }
      }
      double throttle = host_map->throttle(tenant_host);
      if (in_downtime) throttle *= options_.host.migration_downtime_wait_factor;
      engine.SetHostThrottle(throttle);
      record.throttle_factor = throttle;
      record.in_migration_downtime = in_downtime;
    }

    // Advance sample by sample, collecting telemetry.
    container::ResourceVector usage_sum;
    double memory_used_sum = 0.0;
    for (int s = 0; s < whole_samples; ++s) {
      const SimTime sample_end =
          (s == whole_samples - 1)
              ? interval_end
              : interval_start + options_.sample_period * (s + 1);
      events.RunUntil(sample_end);
      telemetry::TelemetrySample sample = engine.CollectSample();
      for (ResourceKind kind : container::kAllResources) {
        const size_t ri = static_cast<size_t>(kind);
        record.utilization_pct[ri] += sample.utilization_pct[ri];
        if (kind == ResourceKind::kMemory) {
          usage_sum.Set(kind,
                        usage_sum.Get(kind) + sample.memory_active_mb);
        } else {
          usage_sum.Set(kind, usage_sum.Get(kind) +
                                  sample.utilization_pct[ri] / 100.0 *
                                      sample.allocation.Get(kind));
        }
      }
      for (size_t w = 0; w < telemetry::kNumWaitClasses; ++w) {
        record.wait_ms[w] += sample.wait_ms[w];
      }
      record.completed += sample.requests_completed;
      memory_used_sum += sample.memory_used_mb;
      if (options_.keep_samples) result.samples.push_back(sample);
      if (!faulty) {
        store.Append(std::move(sample));
        continue;
      }
      // Telemetry-fault ingestion: the engine always collects (the record's
      // ground truth above stays exact); what reaches the store may be
      // dropped, corrupted, or stale. Dropped and rejected samples leave
      // time gaps the signal window's coverage check later detects.
      switch (fault_plan.NextSampleFault()) {
        case fault::SampleFault::kNone:
          last_good = sample;
          have_good = true;
          store.Append(std::move(sample));
          break;
        case fault::SampleFault::kDrop:
          ++result.telemetry_dropped_samples;
          if (sink.pipeline != nullptr) {
            sink.metrics.Add(sink.pipeline->telemetry_dropped_samples_total,
                             1.0);
          }
          break;
        case fault::SampleFault::kNan:
          fault_plan.CorruptSample(fault::SampleFault::kNan, &sample);
          if (!fault::SampleLooksValid(sample)) {
            // Ingestion guard: non-finite samples never reach the store.
            ++result.telemetry_rejected_samples;
            if (sink.pipeline != nullptr) {
              sink.metrics.Add(
                  sink.pipeline->telemetry_rejected_samples_total, 1.0);
            }
          } else {
            store.Append(std::move(sample));
          }
          break;
        case fault::SampleFault::kOutlier:
          fault_plan.CorruptSample(fault::SampleFault::kOutlier, &sample);
          ++result.telemetry_outlier_samples;
          if (sink.pipeline != nullptr) {
            sink.metrics.Add(sink.pipeline->telemetry_outlier_samples_total,
                             1.0);
          }
          store.Append(std::move(sample));
          break;
        case fault::SampleFault::kStale:
          if (have_good) {
            // A stale read repeats the last good payload under the current
            // period: the window stays covered but its content is stale.
            telemetry::TelemetrySample stale = last_good;
            stale.period_start = sample.period_start;
            stale.period_end = sample.period_end;
            ++result.telemetry_stale_samples;
            if (sink.pipeline != nullptr) {
              sink.metrics.Add(sink.pipeline->telemetry_stale_samples_total,
                               1.0);
            }
            store.Append(std::move(stale));
          } else {
            last_good = sample;
            have_good = true;
            store.Append(std::move(sample));
          }
          break;
      }
    }
    const double inv = 1.0 / whole_samples;
    for (ResourceKind kind : container::kAllResources) {
      const size_t ri = static_cast<size_t>(kind);
      record.utilization_pct[ri] *= inv;
      record.usage.Set(kind, usage_sum.Get(kind) * inv);
    }
    record.memory_used_mb = memory_used_sum * inv;
    if (host_enabled) {
      prev_cpu_demand = record.usage.Get(ResourceKind::kCpu);
    }
    if (interval_latency.count() > 0) {
      record.latency_avg_ms = interval_latency.mean();
      record.latency_p95_ms = interval_latency.ValueAtPercentile(95.0);
    }
    record.errors = static_cast<int64_t>(interval_errors);
    interval_latency.Reset();
    interval_errors = 0;

    // Decision for the next interval. Spans nest under this interval's
    // root; the whole block no-ops when observability is off.
    const SimTime now = events.Now();
    const obs::Sink isink =
        ob != nullptr ? sink.Under(ob->trace().root()) : sink;

    const obs::SpanId tele_span = isink.trace.Start("telemetry.compute", now);
    scaler::PolicyInput input;
    input.now = now;
    input.signals = manager.Compute(store, now, &signal_scratch, isink);
    input.current = current;
    input.interval_index = static_cast<int>(i);
    // Engine-truth mean usage of the ended interval (service harnesses
    // that only see signals leave this zero).
    input.usage = record.usage;
    // The decision cycle carries the billing of the interval that just
    // ended (there is no separate charge callback). Billing follows the
    // container actually in effect, so budget tokens are only charged for
    // successfully applied resizes.
    input.charged_cost = current.price_per_interval;
    input.actuation = feedback;
    feedback = host::ActuationFeedback{};
    if (host_enabled) {
      input.placement.present = true;
      input.placement.host_id = tenant_host;
      input.placement.free = host_map->FreeOn(tenant_host);
      input.placement.throttle_factor = host_map->throttle(tenant_host);
      input.placement.saturated = host_map->saturated(tenant_host);
    }
    if (input.signals.degraded) ++result.degraded_windows;
    isink.trace.Attr(tele_span, "valid", input.signals.valid ? 1.0 : 0.0);
    isink.trace.Attr(tele_span, "latency_ms", input.signals.latency_ms);
    isink.trace.End(tele_span, now);

    const obs::SpanId decide_span = isink.trace.Start("decide", now);
    input.obs = isink.Under(decide_span);
    scaler::ScalingDecision decision = policy->Decide(input);
    isink.trace.AttrStr(
        decide_span, "code",
        scaler::ExplanationCodeToken(decision.explanation.code));
    isink.trace.Attr(decide_span, "target_rung", decision.target.base_rung);
    isink.trace.End(decide_span, now);

    // Every policy must state why it decided (acceptance contract of the
    // structured explanation API).
    DBSCALE_CHECK(decision.explanation.set());
    record.decision_code = decision.explanation.code;
    record.decision_explanation = decision.explanation.ToString();

    if (decision.target.id != current.id && !channel.pending()) {
      record.resized = true;
      ++result.resize_attempts;
      const obs::SpanId resize_span = isink.trace.Start("resize", now);
      isink.trace.Attr(resize_span, "from_rung", current.base_rung);
      isink.trace.Attr(resize_span, "to_rung", decision.target.base_rung);
      if (isink.pipeline != nullptr) {
        isink.metrics.Add(isink.pipeline->resize_requests_total, 1.0);
      }
      if (!faulty && !host_enabled) {
        ++result.container_changes;
        if (isink.pipeline != nullptr) {
          isink.metrics.Add(isink.pipeline->sim_resizes_total, 1.0);
          isink.metrics.Add(decision.target.base_rung > current.base_rung
                                ? isink.pipeline->sim_scale_ups_total
                                : isink.pipeline->sim_scale_downs_total,
                            1.0);
          isink.metrics.Add(isink.pipeline->resize_applies_total, 1.0);
        }
        current = decision.target;
        DBSCALE_CHECK(engine.BeginResize(current).ok());
        DBSCALE_CHECK(engine.CompleteResize().ok());
        // Settle the audit trail's outcome even without fault injection
        // (the kApplied feedback branch is decision-neutral).
        feedback.phase = host::ActuationPhase::kApplied;
        feedback.target = current;
        feedback.attempt = 1;
      } else {
        // Placement-aware actuation: classify the decision as a local
        // resize (delta fits next to the host's other commitments) or a
        // migration to the policy's chosen destination.
        host::ActuationRequest req;
        req.target = decision.target;
        req.target_rung = decision.target.base_rung;
        container::ResourceVector up_delta;
        bool held_by_placement = false;
        if (host_enabled) {
          up_delta =
              host::UpDelta(current.resources, decision.target.resources);
          if (!host_map->FitsOn(tenant_host, up_delta)) {
            req.kind = host::ActuationKind::kMigration;
            req.host_hint = placement->ChooseHost(
                *host_map, decision.target.resources, tenant_host);
            if (req.host_hint < 0) {
              // No host in the fleet has capacity: held before actuation
              // (nothing is drawn from the fault plan), reported to the
              // policy as a rejected migration so its cooldown applies.
              host_map->AddPlacementHold();
              feedback.phase = host::ActuationPhase::kRejected;
              feedback.kind = host::ActuationKind::kMigration;
              feedback.target = decision.target;
              feedback.attempt = 1;
              held_by_placement = true;
              if (isink.pipeline != nullptr) {
                isink.metrics.Add(isink.pipeline->host_placement_holds_total,
                                  1.0);
              }
            }
          }
        }
        if (!held_by_placement) {
          const host::ActuationOutcome ev = channel.Begin(req, tenant_host);
          if (host_enabled && ev.phase != host::ActuationPhase::kRejected) {
            if (req.kind == host::ActuationKind::kMigration) {
              host_map->BeginMigration(req.host_hint,
                                       decision.target.resources);
              if (isink.pipeline != nullptr) {
                isink.metrics.Add(isink.pipeline->host_migrations_begun_total,
                                  1.0);
              }
            } else {
              host_map->ReserveLocal(tenant_host, up_delta);
            }
          }
          switch (ev.phase) {
            case host::ActuationPhase::kApplied:
              // Zero actuation latency (local resizes only — a migration
              // always spends its copy + blackout intervals pending): in
              // effect from the next interval, exactly like the null path.
              DBSCALE_CHECK(engine.BeginResize(ev.target).ok());
              DBSCALE_CHECK(engine.CompleteResize().ok());
              ++result.container_changes;
              if (host_enabled) {
                host_map->CommitLocal(tenant_host, up_delta,
                                      current.resources,
                                      ev.target.resources);
              }
              if (isink.pipeline != nullptr) {
                isink.metrics.Add(isink.pipeline->sim_resizes_total, 1.0);
                isink.metrics.Add(ev.target.base_rung > current.base_rung
                                      ? isink.pipeline->sim_scale_ups_total
                                      : isink.pipeline->sim_scale_downs_total,
                                  1.0);
                isink.metrics.Add(isink.pipeline->resize_applies_total, 1.0);
              }
              current = ev.target;
              feedback = ev;
              break;
            case host::ActuationPhase::kPending:
              // Stage the change in the engine; it completes (or aborts)
              // when the actuation latency elapses.
              DBSCALE_CHECK(engine.BeginResize(ev.target).ok());
              feedback = ev;
              break;
            case host::ActuationPhase::kFailed:
              ++result.resize_failures;
              if (host_enabled) host_map->AbortLocal(tenant_host, up_delta);
              if (isink.pipeline != nullptr) {
                isink.metrics.Add(isink.pipeline->resize_failures_total, 1.0);
              }
              feedback = ev;
              break;
            case host::ActuationPhase::kRejected:
              ++result.resize_rejections;
              if (isink.pipeline != nullptr) {
                isink.metrics.Add(isink.pipeline->resize_rejections_total,
                                  1.0);
              }
              feedback = ev;
              break;
            default:
              break;
          }
        }
      }
      isink.trace.End(resize_span, now);
    }
    if (decision.memory_limit_mb.has_value()) {
      engine.SetMemoryLimitMb(*decision.memory_limit_mb);
      if (isink.pipeline != nullptr) {
        isink.metrics.Add(isink.pipeline->sim_memory_limit_applies_total,
                          1.0);
      }
    }
    if (isink.pipeline != nullptr) {
      isink.metrics.Add(
          decision_base +
              static_cast<obs::MetricId>(decision.explanation.code),
          1.0);
      isink.metrics.Add(isink.pipeline->sim_intervals_total, 1.0);
      isink.metrics.Add(isink.pipeline->sim_cost_total, record.cost);
      isink.metrics.Add(isink.pipeline->sim_requests_total,
                        static_cast<double>(record.completed));
      isink.metrics.Add(isink.pipeline->sim_errors_total,
                        static_cast<double>(record.errors));
      isink.metrics.Observe(isink.pipeline->sim_interval_latency_p95_ms,
                            record.latency_p95_ms);
    }
    if (ob != nullptr) ob->trace().EndInterval(interval_end);

    result.intervals.push_back(std::move(record));
    interval_start = interval_end;
  }

  // Aggregate run-level results.
  for (const IntervalRecord& r : result.intervals) {
    result.total_cost += r.cost;
    result.total_errors += static_cast<uint64_t>(r.errors);
  }
  result.avg_cost_per_interval =
      result.total_cost / static_cast<double>(num_intervals);
  result.change_fraction =
      static_cast<double>(result.container_changes) /
      static_cast<double>(num_intervals);
  result.total_completed = static_cast<uint64_t>(run_latency.count());
  if (run_latency.count() > 0) {
    result.latency_avg_ms = run_latency.mean();
    result.latency_p95_ms = run_latency.ValueAtPercentile(95.0);
    result.latency_p99_ms = run_latency.ValueAtPercentile(99.0);
    result.latency_max_ms = run_latency.max_seen();
  }
  result.events_processed = events.events_processed();
  if (host_enabled) {
    const host::HostMap::Counters& hc = host_map->counters();
    result.migrations_begun = hc.migrations_begun;
    result.migrations_completed = hc.migrations_completed;
    result.migration_failures = hc.migrations_failed;
    result.migration_downtime_intervals = hc.downtime_intervals;
    result.host_saturated_holds = hc.placement_holds;
    result.host_digest = host_map->Digest();
  }
  return result;
}

}  // namespace dbscale::sim
