#include "src/sim/experiment.h"

#include <algorithm>

#include "src/baselines/offline_profiler.h"
#include "src/baselines/static_policy.h"
#include "src/baselines/trace_policy.h"
#include "src/baselines/util_policy.h"
#include "src/common/string_util.h"

namespace dbscale::sim {

namespace {

bool WantTechnique(const ComparisonOptions& options,
                   const std::string& name) {
  if (options.techniques.empty()) return true;
  return std::find(options.techniques.begin(), options.techniques.end(),
                   name) != options.techniques.end();
}

}  // namespace

const TechniqueResult* ComparisonResult::Find(const std::string& name) const {
  for (const TechniqueResult& t : techniques) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

std::string ComparisonResult::ToTable() const {
  std::string header = StrFormat("%-10s", "");
  std::string latency_row = StrFormat("%-10s", "Latency");
  std::string cost_row = StrFormat("%-10s", "Cost");
  std::string changes_row = StrFormat("%-10s", "Changes%");
  for (const TechniqueResult& t : techniques) {
    header += StrFormat("%10s", t.name.c_str());
    latency_row += StrFormat(
        "%10.0f", t.run.LatencyMs(goal.aggregate));
    cost_row += StrFormat("%10.1f", t.run.avg_cost_per_interval);
    changes_row += StrFormat("%10.1f", 100.0 * t.run.change_fraction);
  }
  return StrFormat(
      "goal: %s <= %.0f ms\n%s\n%s\n%s\n%s\n",
      telemetry::LatencyAggregateToString(goal.aggregate), goal.target_ms,
      header.c_str(), latency_row.c_str(), cost_row.c_str(),
      changes_row.c_str());
}

Result<RunResult> RunWithPolicy(const SimulationOptions& base,
                                scaler::ScalingPolicy* policy,
                                int initial_rung) {
  SimulationOptions options = base;
  options.initial_rung = initial_rung;
  Simulation simulation(std::move(options));
  return simulation.Run(policy);
}

Result<RunResult> RunMax(const SimulationOptions& base) {
  baselines::StaticPolicy max_policy("Max", base.catalog.largest());
  return RunWithPolicy(base, &max_policy,
                       base.catalog.num_rungs() - 1);
}

Result<ComparisonResult> RunComparison(const SimulationOptions& base,
                                       const ComparisonOptions& options) {
  ComparisonResult result;

  // 1. Gold standard (always needed: it defines the goal and profiles the
  // offline baselines).
  DBSCALE_ASSIGN_OR_RETURN(RunResult max_run, RunMax(base));

  result.goal.aggregate = options.goal_aggregate;
  result.goal.target_ms =
      options.goal_factor * max_run.LatencyMs(options.goal_aggregate);
  if (result.goal.target_ms <= 0.0) {
    return Status::Internal("Max run produced no latency measurements");
  }

  // Online policies must observe the latency aggregate the goal is
  // expressed over.
  SimulationOptions online_base = base;
  online_base.telemetry.latency_aggregate = options.goal_aggregate;

  baselines::OfflineProfiler profiler(base.catalog, max_run.UsageSeries());

  if (WantTechnique(options, "Max")) {
    result.techniques.push_back({"Max", std::move(max_run)});
  }

  if (WantTechnique(options, "Peak")) {
    DBSCALE_ASSIGN_OR_RETURN(container::ContainerSpec peak,
                             profiler.PeakContainer());
    baselines::StaticPolicy policy("Peak", peak);
    DBSCALE_ASSIGN_OR_RETURN(RunResult run,
                             RunWithPolicy(base, &policy, peak.base_rung));
    result.techniques.push_back({"Peak", std::move(run)});
  }

  if (WantTechnique(options, "Avg")) {
    DBSCALE_ASSIGN_OR_RETURN(container::ContainerSpec avg,
                             profiler.AvgContainer());
    baselines::StaticPolicy policy("Avg", avg);
    DBSCALE_ASSIGN_OR_RETURN(RunResult run,
                             RunWithPolicy(base, &policy, avg.base_rung));
    result.techniques.push_back({"Avg", std::move(run)});
  }

  if (WantTechnique(options, "Trace")) {
    DBSCALE_ASSIGN_OR_RETURN(auto schedule, profiler.TraceSchedule());
    const int initial_rung =
        schedule.empty() ? 0 : schedule.front().base_rung;
    baselines::TracePolicy policy(std::move(schedule));
    DBSCALE_ASSIGN_OR_RETURN(RunResult run,
                             RunWithPolicy(base, &policy, initial_rung));
    result.techniques.push_back({"Trace", std::move(run)});
  }

  if (WantTechnique(options, "Util")) {
    baselines::UtilPolicy policy(base.catalog, result.goal);
    DBSCALE_ASSIGN_OR_RETURN(
        RunResult run, RunWithPolicy(online_base, &policy,
                                     options.online_initial_rung));
    result.techniques.push_back({"Util", std::move(run)});
  }

  if (WantTechnique(options, "Auto")) {
    scaler::TenantKnobs knobs;
    knobs.latency_goal = result.goal;
    knobs.sensitivity = options.sensitivity;
    DBSCALE_ASSIGN_OR_RETURN(
        auto auto_scaler,
        scaler::AutoScaler::Create(base.catalog, knobs,
                                   options.auto_scaler));
    DBSCALE_ASSIGN_OR_RETURN(
        RunResult run, RunWithPolicy(online_base, auto_scaler.get(),
                                     options.online_initial_rung));
    result.techniques.push_back({"Auto", std::move(run)});
  }

  return result;
}

}  // namespace dbscale::sim
