#include "src/sim/experiment.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <utility>

#include "src/baselines/offline_profiler.h"
#include "src/baselines/static_policy.h"
#include "src/baselines/trace_policy.h"
#include "src/baselines/util_policy.h"
#include "src/common/string_util.h"
#include "src/scaler/diagonal.h"
#include "src/common/thread_pool.h"

namespace dbscale::sim {

namespace {

bool WantTechnique(const ComparisonOptions& options,
                   const std::string& name) {
  if (options.techniques.empty()) return true;
  return std::find(options.techniques.begin(), options.techniques.end(),
                   name) != options.techniques.end();
}

}  // namespace

const std::vector<std::string>& RegisteredPolicyNames() {
  static const std::vector<std::string> kNames = {"Auto", "Util", "Diagonal"};
  return kNames;
}

Result<std::unique_ptr<scaler::ScalingPolicy>> MakeRegisteredPolicy(
    const std::string& name, const container::Catalog& catalog,
    const scaler::TenantKnobs& knobs) {
  if (name == "Auto") {
    DBSCALE_ASSIGN_OR_RETURN(auto policy,
                             scaler::AutoScaler::Create(catalog, knobs));
    return std::unique_ptr<scaler::ScalingPolicy>(std::move(policy));
  }
  if (name == "Util") {
    if (!knobs.latency_goal.has_value()) {
      return Status::InvalidArgument("Util requires a latency goal");
    }
    return std::unique_ptr<scaler::ScalingPolicy>(
        std::make_unique<baselines::UtilPolicy>(catalog,
                                                *knobs.latency_goal));
  }
  if (name == "Diagonal") {
    DBSCALE_ASSIGN_OR_RETURN(auto policy,
                             scaler::DiagonalScaler::Create(catalog, knobs));
    return std::unique_ptr<scaler::ScalingPolicy>(std::move(policy));
  }
  return Status::InvalidArgument("unknown policy name: " + name);
}

const TechniqueResult* ComparisonResult::Find(const std::string& name) const {
  for (const TechniqueResult& t : techniques) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

std::string ComparisonResult::ToTable() const {
  std::string header = StrFormat("%-10s", "");
  std::string latency_row = StrFormat("%-10s", "Latency");
  std::string cost_row = StrFormat("%-10s", "Cost");
  std::string changes_row = StrFormat("%-10s", "Changes%");
  for (const TechniqueResult& t : techniques) {
    header += StrFormat("%10s", t.name.c_str());
    latency_row += StrFormat(
        "%10.0f", t.run.LatencyMs(goal.aggregate));
    cost_row += StrFormat("%10.1f", t.run.avg_cost_per_interval);
    changes_row += StrFormat("%10.1f", 100.0 * t.run.change_fraction);
  }
  return StrFormat(
      "goal: %s <= %.0f ms\n%s\n%s\n%s\n%s\n",
      telemetry::LatencyAggregateToString(goal.aggregate), goal.target_ms,
      header.c_str(), latency_row.c_str(), cost_row.c_str(),
      changes_row.c_str());
}

Result<RunResult> RunWithPolicy(const SimulationOptions& base,
                                scaler::ScalingPolicy* policy,
                                int initial_rung) {
  SimulationOptions options = base;
  options.initial_rung = initial_rung;
  Simulation simulation(std::move(options));
  return simulation.Run(policy);
}

Result<RunResult> RunMax(const SimulationOptions& base) {
  baselines::StaticPolicy max_policy("Max", base.catalog.largest());
  return RunWithPolicy(base, &max_policy,
                       base.catalog.num_rungs() - 1);
}

Result<ComparisonResult> RunComparison(const SimulationOptions& base_in,
                                       const ComparisonOptions& options) {
  ComparisonResult result;

  // This harness fans techniques out across threads, and the Observability
  // bundle is single-threaded by contract (SimulationOptions::obs): every
  // per-technique copy runs unobserved.
  SimulationOptions base = base_in;
  base.obs = nullptr;

  // 1. Gold standard (always needed: it defines the goal and profiles the
  // offline baselines).
  DBSCALE_ASSIGN_OR_RETURN(RunResult max_run, RunMax(base));

  result.goal.aggregate = options.goal_aggregate;
  result.goal.target_ms =
      options.goal_factor * max_run.LatencyMs(options.goal_aggregate);
  if (result.goal.target_ms <= 0.0) {
    return Status::Internal("Max run produced no latency measurements");
  }

  // Online policies must observe the latency aggregate the goal is
  // expressed over.
  SimulationOptions online_base = base;
  online_base.telemetry.latency_aggregate = options.goal_aggregate;

  baselines::OfflineProfiler profiler(base.catalog, max_run.UsageSeries());

  // The remaining techniques are independent given the Max profiling run:
  // each simulates the same seeded workload under its own policy. Their
  // (cheap) profiler-derived configurations are resolved serially here so
  // any profiling error surfaces deterministically; the (expensive)
  // simulations then fan out across threads. Results are assembled in
  // canonical technique order, so the output is identical at any thread
  // count.
  struct TechniqueJob {
    const char* name;
    std::function<Result<RunResult>()> run;
  };
  std::vector<TechniqueJob> jobs;
  const scaler::LatencyGoal goal = result.goal;

  if (WantTechnique(options, "Peak")) {
    DBSCALE_ASSIGN_OR_RETURN(container::ContainerSpec peak,
                             profiler.PeakContainer());
    jobs.push_back({"Peak", [&base, peak]() -> Result<RunResult> {
                      baselines::StaticPolicy policy("Peak", peak);
                      return RunWithPolicy(base, &policy, peak.base_rung);
                    }});
  }

  if (WantTechnique(options, "Avg")) {
    DBSCALE_ASSIGN_OR_RETURN(container::ContainerSpec avg,
                             profiler.AvgContainer());
    jobs.push_back({"Avg", [&base, avg]() -> Result<RunResult> {
                      baselines::StaticPolicy policy("Avg", avg);
                      return RunWithPolicy(base, &policy, avg.base_rung);
                    }});
  }

  if (WantTechnique(options, "Trace")) {
    DBSCALE_ASSIGN_OR_RETURN(auto schedule, profiler.TraceSchedule());
    jobs.push_back(
        {"Trace",
         [&base, schedule = std::move(schedule)]() -> Result<RunResult> {
           const int initial_rung =
               schedule.empty() ? 0 : schedule.front().base_rung;
           baselines::TracePolicy policy(schedule);
           return RunWithPolicy(base, &policy, initial_rung);
         }});
  }

  if (WantTechnique(options, "Util")) {
    jobs.push_back(
        {"Util", [&online_base, &options, goal]() -> Result<RunResult> {
           baselines::UtilPolicy policy(online_base.catalog, goal);
           return RunWithPolicy(online_base, &policy,
                                options.online_initial_rung);
         }});
  }

  if (WantTechnique(options, "Auto")) {
    jobs.push_back(
        {"Auto", [&online_base, &options, goal]() -> Result<RunResult> {
           scaler::TenantKnobs knobs;
           knobs.latency_goal = goal;
           knobs.sensitivity = options.sensitivity;
           DBSCALE_ASSIGN_OR_RETURN(
               auto auto_scaler,
               scaler::AutoScaler::Create(online_base.catalog, knobs,
                                          options.auto_scaler));
           return RunWithPolicy(online_base, auto_scaler.get(),
                                options.online_initial_rung);
         }});
  }

  std::vector<std::optional<Result<RunResult>>> outcomes(jobs.size());
  auto run_job = [&](int64_t i) {
    outcomes[static_cast<size_t>(i)] =
        jobs[static_cast<size_t>(i)].run();
  };
  if (options.num_threads == 0) {
    ThreadPool::Global().ParallelFor(
        0, static_cast<int64_t>(jobs.size()), run_job);
  } else {
    ThreadPool pool(options.num_threads);
    pool.ParallelFor(0, static_cast<int64_t>(jobs.size()), run_job);
  }

  if (WantTechnique(options, "Max")) {
    result.techniques.push_back({"Max", std::move(max_run)});
  }
  for (size_t i = 0; i < jobs.size(); ++i) {
    Result<RunResult>& outcome = *outcomes[i];
    if (!outcome.ok()) return outcome.status();
    result.techniques.push_back(
        {jobs[i].name, std::move(outcome).value()});
  }

  return result;
}

}  // namespace dbscale::sim
