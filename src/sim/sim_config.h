// SimConfig: one validated bundle for a full closed-loop run.
//
// Before this type, a complete experiment scattered its knobs across four
// structs (SimulationOptions, TelemetryManagerOptions, TenantKnobs,
// AutoScalerOptions) plus the fault plan, each validated — or not — at a
// different layer. SimConfig folds them into a single value with one
// Validate() covering every cross-cutting constraint (trace vs interval,
// latency-goal aggregate vs telemetry aggregate, fault probabilities,
// resize-retry knobs, budget feasibility via AutoScaler::Create).

#ifndef DBSCALE_SIM_SIM_CONFIG_H_
#define DBSCALE_SIM_SIM_CONFIG_H_

#include <memory>

#include "src/scaler/autoscaler.h"
#include "src/scaler/knobs.h"
#include "src/sim/simulation.h"

namespace dbscale::sim {

/// A finished SimConfig::Run(): the run outcome plus the scaler that drove
/// it (kept alive so its audit log / budget state stay inspectable).
struct SimConfigRun {
  RunResult result;
  std::unique_ptr<scaler::AutoScaler> scaler;
};

/// \brief Everything one closed-loop Auto run needs, validated as a whole.
struct SimConfig {
  /// Harness options — catalog, workload, trace, telemetry, fault plan.
  SimulationOptions simulation;
  /// Host placement & interference plane (the canonical place to configure
  /// it; copied over `simulation.host` by EffectiveSimulationOptions).
  /// Disabled by default — num_hosts == 0 keeps runs bit-identical to the
  /// host-free world.
  host::HostOptions host;
  /// Tenant-facing knobs (budget, latency goal, sensitivity).
  scaler::TenantKnobs knobs;
  /// Auto-policy internals (thresholds, ballooning, resize retries).
  scaler::AutoScalerOptions scaler;

  /// Validates every layer and the constraints that span them. A default
  /// SimConfig fails only on the empty trace/workload.
  Status Validate() const;

  /// `simulation` with derived consistency applied: the telemetry latency
  /// aggregate follows the latency goal's aggregate when a goal is set,
  /// and `host` overrides `simulation.host`.
  SimulationOptions EffectiveSimulationOptions() const;

  /// Validates, then builds the Auto policy for `simulation.catalog`.
  Result<std::unique_ptr<scaler::AutoScaler>> MakeAutoScaler() const;

  /// Validates, builds the scaler, and runs the closed loop.
  Result<SimConfigRun> Run() const;
};

}  // namespace dbscale::sim

namespace dbscale {
using sim::SimConfig;  // The canonical spelling is dbscale::SimConfig.
}  // namespace dbscale

#endif  // DBSCALE_SIM_SIM_CONFIG_H_
