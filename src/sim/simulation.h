// The experiment harness: wires engine + workload generator + telemetry +
// a scaling policy into the paper's closed billing-interval loop
// (Section 7.1 methodology).
//
// One trace step = one billing interval (the paper compresses time the same
// way). Each interval:
//   1. the engine runs under the interval's container, sampled every
//      `sample_period` into the telemetry store;
//   2. at the interval end, the telemetry manager computes signals and the
//      policy decides the next interval's container;
//   3. resizes are applied online; the interval is billed at its
//      container's price.

#ifndef DBSCALE_SIM_SIMULATION_H_
#define DBSCALE_SIM_SIMULATION_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/container/catalog.h"
#include "src/engine/engine.h"
#include "src/fault/fault_plan.h"
#include "src/host/host_map.h"
#include "src/scaler/policy.h"
#include "src/telemetry/manager.h"
#include "src/workload/generator.h"
#include "src/workload/mix.h"
#include "src/workload/trace.h"

namespace dbscale::sim {

/// Per-interval outcome record.
struct IntervalRecord {
  int index = 0;
  /// Container in effect during the interval (billed).
  container::ContainerSpec container;
  double cost = 0.0;
  /// Latency over requests completed within the interval (ms).
  double latency_avg_ms = 0.0;
  double latency_p95_ms = 0.0;
  int64_t completed = 0;
  int64_t errors = 0;
  /// Mean absolute resource usage (cores, active MB, IOPS, log MB/s).
  container::ResourceVector usage;
  /// Mean percent utilization per resource.
  std::array<double, container::kNumResources> utilization_pct{};
  /// Total wait ms per class over the interval.
  std::array<double, telemetry::kNumWaitClasses> wait_ms{};
  double memory_used_mb = 0.0;
  /// Decision taken at the *end* of this interval: its stable code and the
  /// rendered Explanation::ToString() text.
  scaler::ExplanationCode decision_code = scaler::ExplanationCode::kUnset;
  std::string decision_explanation;
  bool resized = false;
  /// Host-plane state during the interval (1.0 / false without hosts).
  double throttle_factor = 1.0;
  bool in_migration_downtime = false;
};

/// \brief Complete result of one simulated run.
struct RunResult {
  std::string policy_name;
  std::vector<IntervalRecord> intervals;
  /// Raw 5-second telemetry samples (kept when options.keep_samples).
  std::vector<telemetry::TelemetrySample> samples;

  /// Whole-run latency aggregates over every completed request (ms).
  double latency_avg_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;

  double total_cost = 0.0;
  double avg_cost_per_interval = 0.0;
  int container_changes = 0;
  double change_fraction = 0.0;
  uint64_t total_completed = 0;
  uint64_t total_errors = 0;
  uint64_t events_processed = 0;

  /// Resize-lifecycle counters (src/fault/). With a null fault plan every
  /// request applies immediately, so resize_attempts == container_changes
  /// and the failure counters stay zero.
  uint64_t resize_attempts = 0;
  uint64_t resize_failures = 0;
  uint64_t resize_rejections = 0;
  /// Telemetry-fault counters (zero with a null fault plan).
  uint64_t telemetry_dropped_samples = 0;
  uint64_t telemetry_rejected_samples = 0;
  uint64_t telemetry_stale_samples = 0;
  uint64_t telemetry_outlier_samples = 0;
  /// Intervals whose signal window was below the confidence floor.
  uint64_t degraded_windows = 0;

  /// Host-plane counters (all zero without hosts; see SimulationOptions::
  /// host). Migration failures also count toward resize_failures.
  uint64_t migrations_begun = 0;
  uint64_t migrations_completed = 0;
  uint64_t migration_failures = 0;
  uint64_t migration_downtime_intervals = 0;
  /// Scale-ups held because no host (current or other) had capacity.
  uint64_t host_saturated_holds = 0;
  /// Final HostMap::Digest() (0 without hosts).
  uint64_t host_digest = 0;

  /// Per-interval absolute usage (input for OfflineProfiler).
  std::vector<container::ResourceVector> UsageSeries() const;
  /// Latency in the given aggregate.
  double LatencyMs(telemetry::LatencyAggregate aggregate) const;
};

struct SimulationOptions {
  container::Catalog catalog = container::Catalog::MakeLockStep();
  workload::WorkloadSpec workload;
  workload::Trace trace;
  /// Simulated seconds per trace step == billing interval length.
  Duration interval_duration = Duration::Seconds(20);
  Duration sample_period = Duration::Seconds(5);
  /// Multiplier on trace rates.
  double rate_scale = 1.0;
  /// Client connection-pool cap forwarded to the generator: requests beyond
  /// this many in flight are dropped, bounding queue blow-up under deep
  /// under-provisioning. 0 = unlimited. Open-loop only.
  uint64_t max_in_flight = 400;
  /// Client model: open loop (trace = offered rps) or closed loop (trace =
  /// concurrent sessions, the paper's literal Figure 8 axis).
  workload::ArrivalMode arrival_mode = workload::ArrivalMode::kOpenLoop;
  telemetry::TelemetryManagerOptions telemetry;
  /// Engine options; when unset, derived from the workload.
  std::optional<engine::EngineOptions> engine;
  /// Rung index of the container for interval 0.
  int initial_rung = 3;
  uint64_t seed = 42;
  /// Deterministic fault injection (resize + telemetry faults). The default
  /// (disabled) plan draws nothing and leaves the run bit-identical to a
  /// build without the fault layer.
  fault::FaultPlanOptions fault;
  /// Host placement & interference plane. Disabled by default
  /// (num_hosts == 0): no map is built, the engine throttle is never
  /// touched, and the run stays bit-identical to a build without the host
  /// layer. When enabled, the single tenant is seed-placed next to
  /// `host.background` load, scale-ups that exceed the host's headroom
  /// become migrations (copy latency + billed downtime), and saturated
  /// hosts inflate observed waits.
  host::HostOptions host;
  bool prewarm_buffer_pool = true;
  /// Retain every telemetry sample in the result (drill-down experiments).
  bool keep_samples = false;
  /// Observability bundle (not owned; nullptr = off). When set, the run
  /// records pipeline/engine metrics into the primary shard and captures
  /// one span tree per billing interval. Single-threaded use only: parallel
  /// harnesses (RunComparison) must leave this unset on their copies.
  obs::Observability* obs = nullptr;
};

/// \brief Runs one policy against one workload/trace.
class Simulation {
 public:
  explicit Simulation(SimulationOptions options);

  /// Validates options and executes the full trace. The policy is driven
  /// closed-loop; its decisions are applied online.
  Result<RunResult> Run(scaler::ScalingPolicy* policy);

  const SimulationOptions& options() const { return options_; }

 private:
  SimulationOptions options_;
};

}  // namespace dbscale::sim

#endif  // DBSCALE_SIM_SIMULATION_H_
