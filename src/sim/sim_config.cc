#include "src/sim/sim_config.h"

namespace dbscale::sim {

SimulationOptions SimConfig::EffectiveSimulationOptions() const {
  SimulationOptions out = simulation;
  if (knobs.latency_goal.has_value()) {
    // The scaler categorizes latency in the goal's aggregate; feeding it
    // signals in a different aggregate is a classic mis-wiring.
    out.telemetry.latency_aggregate = knobs.latency_goal->aggregate;
  }
  if (host.enabled()) out.host = host;
  return out;
}

Status SimConfig::Validate() const {
  DBSCALE_RETURN_IF_ERROR(knobs.Validate());
  DBSCALE_RETURN_IF_ERROR(scaler.thresholds.Validate());
  DBSCALE_RETURN_IF_ERROR(simulation.workload.Validate());
  if (simulation.trace.empty()) {
    return Status::InvalidArgument("trace is empty");
  }
  if (simulation.interval_duration < simulation.sample_period) {
    return Status::InvalidArgument(
        "interval_duration must be >= sample_period");
  }
  if (simulation.initial_rung < 0 ||
      simulation.initial_rung >= simulation.catalog.num_rungs()) {
    return Status::OutOfRange("initial_rung outside the catalog");
  }
  {
    telemetry::TelemetryManager probe(
        EffectiveSimulationOptions().telemetry);
    DBSCALE_RETURN_IF_ERROR(probe.Validate());
  }
  DBSCALE_RETURN_IF_ERROR(simulation.fault.Validate());
  DBSCALE_RETURN_IF_ERROR(simulation.host.Validate());
  DBSCALE_RETURN_IF_ERROR(host.Validate());
  if (scaler.resize_max_attempts < 1) {
    return Status::InvalidArgument("resize_max_attempts must be >= 1");
  }
  if (scaler.resize_backoff_base_intervals < 1) {
    return Status::InvalidArgument(
        "resize_backoff_base_intervals must be >= 1");
  }
  if (scaler.resize_backoff_multiplier < 1.0) {
    return Status::InvalidArgument(
        "resize_backoff_multiplier must be >= 1");
  }
  if (scaler.resize_backoff_max_intervals <
      scaler.resize_backoff_base_intervals) {
    return Status::InvalidArgument(
        "resize_backoff_max_intervals must be >= the base");
  }
  if (scaler.resize_rejection_cooldown_intervals < 0) {
    return Status::InvalidArgument(
        "resize_rejection_cooldown_intervals must be >= 0");
  }
  return Status::OK();
}

Result<std::unique_ptr<scaler::AutoScaler>> SimConfig::MakeAutoScaler()
    const {
  DBSCALE_RETURN_IF_ERROR(Validate());
  // Create() re-checks knobs/thresholds and additionally verifies budget
  // feasibility against the catalog's price range.
  return scaler::AutoScaler::Create(simulation.catalog, knobs, scaler);
}

Result<SimConfigRun> SimConfig::Run() const {
  DBSCALE_ASSIGN_OR_RETURN(auto auto_scaler, MakeAutoScaler());
  Simulation sim(EffectiveSimulationOptions());
  DBSCALE_ASSIGN_OR_RETURN(RunResult result, sim.Run(auto_scaler.get()));
  return SimConfigRun{std::move(result), std::move(auto_scaler)};
}

}  // namespace dbscale::sim
