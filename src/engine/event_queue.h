// Discrete-event simulation core.
//
// A single-threaded event queue: callbacks scheduled at simulated
// timestamps, executed in time order (FIFO among equal timestamps via a
// monotonically increasing sequence number, so runs are deterministic).

#ifndef DBSCALE_ENGINE_EVENT_QUEUE_H_
#define DBSCALE_ENGINE_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/sim_time.h"

namespace dbscale::engine {

/// \brief Deterministic discrete-event scheduler.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current simulated time (the timestamp of the event being processed, or
  /// the last processed).
  SimTime Now() const { return now_; }

  /// Schedules `cb` at absolute time `when`. `when` must not be in the past.
  void ScheduleAt(SimTime when, Callback cb);

  /// Schedules `cb` after `delay` from Now().
  void ScheduleAfter(Duration delay, Callback cb);

  /// Runs events until the queue is empty or the next event is after
  /// `until`; leaves Now() == until. Events scheduled exactly at `until`
  /// are executed.
  void RunUntil(SimTime until);

  /// Runs all remaining events.
  void RunAll();

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }
  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = SimTime::Zero();
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace dbscale::engine

#endif  // DBSCALE_ENGINE_EVENT_QUEUE_H_
