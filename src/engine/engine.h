// The simulated database engine.
//
// Substitutes for the Azure SQL DB engine of the paper's prototype: executes
// requests against container-limited resources and emits the production
// telemetry (utilization, wait statistics by class, latencies) that the
// auto-scaler consumes. See DESIGN.md §2 for the substitution argument.
//
// Request lifecycle:
//   arrive -> [workspace memory grant] ->
//   { CPU slice -> page accesses (buffer pool; misses -> disk I/O) }* ->
//   [hot-row lock, held through application think time] ->
//   [log write] -> commit (release lock & grant)
//
// The hot-row lock is taken after the resource-bound read/compute phase and
// held through application think time and the commit, so lock hold times —
// and therefore lock contention — are essentially independent of container
// size: the paper's "bottleneck beyond resources".
//
// Every microsecond a request spends blocked is attributed to a WaitClass:
//   CPU queueing + slow-core stretch  -> CPU (signal waits)
//   cold page-read I/O                -> DiskIO
//   hot page-read I/O under memory pressure -> BufferPool
//   hot page-read I/O during warm-up  -> DiskIO
//   log-write queueing + service      -> LogIO
//   lock queueing                     -> Lock
//   latch interference                -> Latch
//   memory-grant queueing             -> Memory
//   background (checkpoint-like)      -> System

#ifndef DBSCALE_ENGINE_ENGINE_H_
#define DBSCALE_ENGINE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/container/container.h"
#include "src/engine/buffer_pool.h"
#include "src/engine/engine_metrics.h"
#include "src/engine/event_queue.h"
#include "src/engine/lock_manager.h"
#include "src/engine/memory_broker.h"
#include "src/engine/request.h"
#include "src/engine/server_queue.h"
#include "src/obs/pipeline.h"
#include "src/stats/cdf.h"
#include "src/telemetry/sample.h"

namespace dbscale::engine {

/// Static configuration of the simulated database and engine behaviour.
struct EngineOptions {
  /// Total data size (MB); cold accesses roam over this minus the working
  /// set.
  double database_mb = 32768.0;
  /// Workload working-set size (MB).
  double working_set_mb = 1024.0;
  /// Number of contended hot rows for the lock manager.
  int num_hot_rows = 32;
  /// Lock-wait timeout (engine aborts the transaction afterwards).
  Duration lock_timeout = Duration::Seconds(10);
  /// Fraction of container memory given to the buffer pool; the rest is
  /// workspace for memory grants.
  double buffer_pool_fraction = 0.8;
  /// Per-request probability and mean duration of a latch interference wait.
  double latch_probability = 0.05;
  double latch_mean_ms = 1.0;
  /// Per-request probability and mean duration of background (checkpoint-
  /// like) interference.
  double system_wait_probability = 0.01;
  double system_wait_mean_ms = 4.0;
  /// Max number of CPU/I/O interleave rounds per request.
  int max_io_batches = 4;
};

/// \brief Container-limited database engine simulator.
class DatabaseEngine {
 public:
  using CompletionHook = std::function<void(const RequestResult&)>;

  DatabaseEngine(EventQueue* events, const EngineOptions& options,
                 const container::ContainerSpec& initial_container, Rng rng);

  /// Submits one request; `done` (optional) fires at completion.
  void Submit(const RequestSpec& spec, CompletionHook done = nullptr);

  /// Installs a listener invoked for every completed request (in addition
  /// to per-request hooks); the harness uses it for run-level latency
  /// accounting.
  void SetCompletionListener(CompletionHook listener);

  /// Pre-fills the buffer pool with the working set (up to capacity), as a
  /// steady-state start; avoids a cold-start miss storm at simulation
  /// begin.
  void PrewarmBufferPool();

  /// Stages a container resize. The engine keeps serving on the current
  /// container until CompleteResize() — mirroring the DaaS actuation path,
  /// where a resize is an operation that takes time and can fail. Errors
  /// when a resize is already staged (one actuation channel).
  Status BeginResize(const container::ContainerSpec& spec);

  /// Applies the staged resize (online; in-flight work is unaffected
  /// except that it now competes for the new capacity). Errors when no
  /// resize is staged.
  Status CompleteResize();

  /// Discards the staged resize (the actuation failed); the engine stays
  /// on its current container. Errors when no resize is staged.
  Status AbortResize();

  bool resize_pending() const { return staged_resize_.has_value(); }
  /// Target of the staged resize (unset when none is pending).
  const std::optional<container::ContainerSpec>& staged_resize() const {
    return staged_resize_;
  }

  /// Noisy-neighbor hook for the host plane: inflates every reported wait
  /// by `factor` (>= 1) in subsequent CollectSample()s, modeling the CPU
  /// throttling a saturated host imposes on its co-located tenants.
  /// Exactly 1.0 is an identity — samples are bit-identical to a run
  /// without the hook, preserving the null-host-plan digest contract.
  void SetHostThrottle(double factor);
  double host_throttle() const { return host_throttle_; }

  /// Balloon override: caps effective memory below the container's
  /// allocation (used by the balloon controller's gradual shrink).
  /// Passing a value >= the container's memory clears the override.
  void SetMemoryLimitMb(double mb);
  void ClearMemoryLimit();
  double effective_memory_mb() const;

  /// Builds the telemetry sample for the period since the previous call
  /// (or construction) and resets period accumulators.
  telemetry::TelemetrySample CollectSample();

  /// Registers the engine instrument block on `ob`'s registry (late,
  /// idempotent), re-sizes the primary shard, and wires every component to
  /// record into it. Setup-time only; nullptr is a no-op (metrics stay
  /// off, recording remains one predictable branch per site).
  void EnableObservability(obs::Observability* ob);
  const EngineMetrics& metrics() const { return metrics_; }

  const container::ContainerSpec& current_container() const {
    return container_;
  }
  const BufferPool& buffer_pool() const { return *buffer_pool_; }
  const LockManager& lock_manager() const { return *locks_; }
  EventQueue* events() const { return events_; }

  /// Engine-lifetime counters.
  uint64_t requests_submitted() const { return requests_submitted_; }
  uint64_t requests_completed() const { return requests_completed_; }
  uint64_t requests_errored() const { return requests_errored_; }
  /// Requests submitted but not yet completed.
  uint64_t requests_in_flight() const {
    return requests_submitted_ - requests_completed_;
  }

 private:
  struct RequestState;

  void AcquireGrant(std::shared_ptr<RequestState> rs);
  void AcquireLock(std::shared_ptr<RequestState> rs);
  void RunBatch(std::shared_ptr<RequestState> rs);
  void DoPageAccesses(std::shared_ptr<RequestState> rs);
  void MaybeLatch(std::shared_ptr<RequestState> rs,
                  std::function<void()> next);
  void WriteLog(std::shared_ptr<RequestState> rs);
  void Finish(std::shared_ptr<RequestState> rs, bool error);
  void AddWait(RequestState* rs, telemetry::WaitClass wc, Duration wait);
  void ApplyMemory();

  EventQueue* events_;
  EngineOptions options_;
  container::ContainerSpec container_;
  /// Resize staged by BeginResize, applied by CompleteResize.
  std::optional<container::ContainerSpec> staged_resize_;
  Rng rng_;
  CompletionHook completion_listener_;

  std::unique_ptr<ServerQueue> cpu_;
  std::unique_ptr<ServerQueue> disk_;
  std::unique_ptr<ServerQueue> log_;
  std::unique_ptr<BufferPool> buffer_pool_;
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<MemoryBroker> memory_;

  double memory_limit_mb_ = -1.0;  // balloon override; <0 = none
  double host_throttle_ = 1.0;     // host-plane wait inflation; 1 = off

  EngineMetrics metrics_;
  obs::MetricSink metric_sink_;

  // Period accumulators (reset by CollectSample()).
  SimTime period_start_ = SimTime::Zero();
  std::array<double, telemetry::kNumWaitClasses> period_wait_ms_{};
  stats::LatencyHistogram period_latency_{0.01, 1e8, 48};
  int64_t period_started_ = 0;
  int64_t period_completed_ = 0;
  int64_t period_physical_reads_ = 0;

  // Lifetime counters.
  uint64_t requests_submitted_ = 0;
  uint64_t requests_completed_ = 0;
  uint64_t requests_errored_ = 0;
};

}  // namespace dbscale::engine

#endif  // DBSCALE_ENGINE_ENGINE_H_
