// The engine's instrument block: counters and histograms for the server
// queues, buffer pool, lock manager, memory broker, and the request
// lifecycle. Registered late (after Observability construction) via
// Register(); DatabaseEngine::EnableObservability wires the ids into the
// components, which record through a by-value MetricSink — one branch per
// record call when observability is off.

#ifndef DBSCALE_ENGINE_ENGINE_METRICS_H_
#define DBSCALE_ENGINE_ENGINE_METRICS_H_

#include "src/obs/metrics.h"

namespace dbscale::engine {

struct EngineMetrics {
  // Server queues (one jobs counter + queue-wait histogram per device).
  obs::MetricId cpu_jobs_total = 0;
  obs::MetricId cpu_queue_wait_ms = 0;  // histogram
  obs::MetricId disk_jobs_total = 0;
  obs::MetricId disk_queue_wait_ms = 0;  // histogram
  obs::MetricId log_jobs_total = 0;
  obs::MetricId log_queue_wait_ms = 0;  // histogram

  // Buffer pool.
  obs::MetricId buffer_pool_hits_total = 0;
  obs::MetricId buffer_pool_misses_total = 0;

  // Lock manager.
  obs::MetricId lock_grants_total = 0;
  obs::MetricId lock_timeouts_total = 0;
  obs::MetricId lock_wait_ms = 0;  // histogram (grants and timeouts)

  // Memory broker.
  obs::MetricId memory_grants_total = 0;
  obs::MetricId memory_grant_wait_ms = 0;  // histogram

  // Request lifecycle.
  obs::MetricId requests_completed_total = 0;
  obs::MetricId requests_errored_total = 0;
  obs::MetricId request_latency_ms = 0;  // histogram

  /// First of telemetry::kNumWaitClasses contiguous wait-time counters,
  /// one per WaitClass: id = wait_ms_base + static_cast<int>(wc).
  obs::MetricId wait_ms_base = 0;

  /// Registers (idempotently) the engine instrument block on `registry`
  /// and returns the resolved ids. Setup-time only.
  static EngineMetrics Register(obs::MetricRegistry* registry);
};

}  // namespace dbscale::engine

#endif  // DBSCALE_ENGINE_ENGINE_METRICS_H_
