#include "src/engine/event_queue.h"

#include "src/common/check.h"

namespace dbscale::engine {

void EventQueue::ScheduleAt(SimTime when, Callback cb) {
  DBSCALE_DCHECK(when >= now_);
  heap_.push(Event{when, next_seq_++, std::move(cb)});
}

void EventQueue::ScheduleAfter(Duration delay, Callback cb) {
  ScheduleAt(now_ + delay, std::move(cb));
}

void EventQueue::RunUntil(SimTime until) {
  DBSCALE_DCHECK(until >= now_);
  while (!heap_.empty() && heap_.top().when <= until) {
    // priority_queue::top() is const; move out via const_cast is UB-free
    // here because we pop immediately and Event's members are not const.
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = event.when;
    ++events_processed_;
    event.cb();
  }
  now_ = until;
}

void EventQueue::RunAll() {
  while (!heap_.empty()) {
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = event.when;
    ++events_processed_;
    event.cb();
  }
}

}  // namespace dbscale::engine
