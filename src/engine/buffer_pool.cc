#include "src/engine/buffer_pool.h"

#include <algorithm>

#include "src/common/check.h"

namespace dbscale::engine {

BufferPool::BufferPool(int64_t capacity_pages, int64_t working_set_pages,
                       int64_t database_pages, Rng* rng)
    : capacity_pages_(capacity_pages),
      working_set_pages_(working_set_pages),
      database_pages_(database_pages),
      rng_(rng) {
  DBSCALE_CHECK(capacity_pages >= 0);
  DBSCALE_CHECK(working_set_pages > 0);
  DBSCALE_CHECK(database_pages >= working_set_pages);
  DBSCALE_CHECK(rng != nullptr);
}

double BufferPool::HotHitProbability() const {
  if (working_set_pages_ == 0) return 1.0;
  return std::min(1.0, static_cast<double>(hot_cached_) /
                           static_cast<double>(working_set_pages_));
}

bool BufferPool::Access(bool hot) {
  const bool hit = AccessImpl(hot);
  metrics_.Add(hit ? hits_metric_ : misses_metric_, 1.0);
  return hit;
}

bool BufferPool::AccessImpl(bool hot) {
  if (hot) {
    // A uniformly random working-set page; cached with probability
    // hot_cached / working_set.
    if (rng_->Bernoulli(HotHitProbability())) return true;
    // Miss: cache the page after the read. Prefer evicting cold pages;
    // if the pool is smaller than the working set, hot pages replace each
    // other and hot_cached saturates at capacity.
    if (cached_pages() >= capacity_pages_) {
      if (cold_cached_ > 0) {
        --cold_cached_;
      } else {
        // Pool full of hot pages: replacement does not change hot_cached_.
        return false;
      }
    }
    if (hot_cached_ < std::min(capacity_pages_, working_set_pages_)) {
      ++hot_cached_;
    }
    return false;
  }

  // Cold access over the non-working-set region.
  const int64_t cold_region =
      std::max<int64_t>(1, database_pages_ - working_set_pages_);
  const double hit_prob =
      std::min(1.0, static_cast<double>(cold_cached_) /
                        static_cast<double>(cold_region));
  if (rng_->Bernoulli(hit_prob)) return true;
  // Miss: admit the cold page only into space not needed by the hot set —
  // an LRU under a hot/cold mix keeps the frequently-touched hot pages.
  const int64_t cold_budget =
      std::max<int64_t>(0, capacity_pages_ - hot_cached_);
  if (cold_cached_ < cold_budget) {
    ++cold_cached_;
  }
  // else: replaces another cold page; cold_cached_ unchanged.
  return false;
}

void BufferPool::PrewarmHotSet() {
  hot_cached_ = std::min(capacity_pages_, working_set_pages_);
  EvictTo(capacity_pages_);
}

void BufferPool::SetCapacity(int64_t capacity_pages) {
  DBSCALE_CHECK(capacity_pages >= 0);
  capacity_pages_ = capacity_pages;
  EvictTo(capacity_pages_);
}

void BufferPool::SetWorkingSet(int64_t working_set_pages) {
  DBSCALE_CHECK(working_set_pages > 0);
  DBSCALE_CHECK(working_set_pages <= database_pages_);
  working_set_pages_ = working_set_pages;
  hot_cached_ = std::min(hot_cached_, working_set_pages_);
}

void BufferPool::EvictTo(int64_t target_pages) {
  // Cold pages first.
  int64_t excess = cached_pages() - target_pages;
  if (excess <= 0) return;
  int64_t cold_evicted = std::min(excess, cold_cached_);
  cold_cached_ -= cold_evicted;
  excess -= cold_evicted;
  if (excess > 0) {
    hot_cached_ -= excess;
    DBSCALE_CHECK(hot_cached_ >= 0);
  }
}

}  // namespace dbscale::engine
