#include "src/engine/lock_manager.h"

#include <utility>

#include "src/common/check.h"

namespace dbscale::engine {

LockManager::LockManager(EventQueue* events, int num_rows,
                         Duration wait_timeout)
    : events_(events), wait_timeout_(wait_timeout), rows_(num_rows) {
  DBSCALE_CHECK(events != nullptr);
  DBSCALE_CHECK(num_rows > 0);
  DBSCALE_CHECK(wait_timeout > Duration::Zero());
}

void LockManager::Acquire(int row, Grant on_grant) {
  DBSCALE_CHECK(row >= 0 && row < num_rows());
  Row& r = rows_[static_cast<size_t>(row)];
  if (!r.held && r.waiters.empty()) {
    r.held = true;
    ++grants_;
    metrics_.Add(grants_metric_, 1.0);
    metrics_.Observe(wait_metric_, 0.0);
    on_grant(true, Duration::Zero());
    return;
  }
  const uint64_t ticket = next_ticket_++;
  r.waiters.push_back(Waiter{ticket, events_->Now(), std::move(on_grant)});
  // Arm the timeout. The waiter might have been granted (and removed) by
  // then; the ticket identifies it.
  events_->ScheduleAfter(wait_timeout_, [this, row, ticket]() {
    Row& rr = rows_[static_cast<size_t>(row)];
    for (auto it = rr.waiters.begin(); it != rr.waiters.end(); ++it) {
      if (it->ticket == ticket) {
        Grant grant = std::move(it->on_grant);
        Duration waited = events_->Now() - it->enqueued;
        rr.waiters.erase(it);
        ++timeouts_;
        metrics_.Add(timeouts_metric_, 1.0);
        metrics_.Observe(wait_metric_, waited.ToMillis());
        grant(false, waited);
        return;
      }
    }
    // Already granted; nothing to do.
  });
}

void LockManager::Release(int row) {
  DBSCALE_CHECK(row >= 0 && row < num_rows());
  Row& r = rows_[static_cast<size_t>(row)];
  DBSCALE_CHECK(r.held);
  r.held = false;
  GrantNext(row);
}

void LockManager::GrantNext(int row) {
  Row& r = rows_[static_cast<size_t>(row)];
  if (r.held || r.waiters.empty()) return;
  Waiter waiter = std::move(r.waiters.front());
  r.waiters.pop_front();
  r.held = true;
  ++grants_;
  const Duration waited = events_->Now() - waiter.enqueued;
  metrics_.Add(grants_metric_, 1.0);
  metrics_.Observe(wait_metric_, waited.ToMillis());
  waiter.on_grant(true, waited);
}

bool LockManager::IsHeld(int row) const {
  DBSCALE_CHECK(row >= 0 && row < num_rows());
  return rows_[static_cast<size_t>(row)].held;
}

size_t LockManager::QueueLength(int row) const {
  DBSCALE_CHECK(row >= 0 && row < num_rows());
  return rows_[static_cast<size_t>(row)].waiters.size();
}

}  // namespace dbscale::engine
