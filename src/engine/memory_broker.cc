#include "src/engine/memory_broker.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace dbscale::engine {

MemoryBroker::MemoryBroker(EventQueue* events, double workspace_mb)
    : events_(events), workspace_mb_(workspace_mb) {
  DBSCALE_CHECK(events != nullptr);
  DBSCALE_CHECK(workspace_mb >= 0.0);
}

void MemoryBroker::Acquire(double mb, Grant on_grant) {
  DBSCALE_DCHECK(mb > 0.0);
  mb = std::min(mb, workspace_mb_);
  if (waiters_.empty() && in_use_mb_ + mb <= workspace_mb_) {
    in_use_mb_ += mb;
    metrics_.Add(grants_metric_, 1.0);
    metrics_.Observe(wait_metric_, 0.0);
    on_grant(Duration::Zero(), mb);
    return;
  }
  waiters_.push_back(Waiter{mb, events_->Now(), std::move(on_grant)});
}

void MemoryBroker::Release(double mb) {
  DBSCALE_DCHECK(mb >= 0.0);
  in_use_mb_ = std::max(0.0, in_use_mb_ - mb);
  TryGrant();
}

void MemoryBroker::SetWorkspace(double workspace_mb) {
  DBSCALE_CHECK(workspace_mb >= 0.0);
  workspace_mb_ = workspace_mb;
  TryGrant();
}

void MemoryBroker::TryGrant() {
  while (!waiters_.empty()) {
    // Clamp against the current workspace so a shrink cannot wedge the
    // queue behind an unsatisfiable request.
    double mb = std::min(waiters_.front().mb, workspace_mb_);
    if (in_use_mb_ + mb > workspace_mb_) break;
    Waiter waiter = std::move(waiters_.front());
    waiters_.pop_front();
    in_use_mb_ += mb;
    const Duration waited = events_->Now() - waiter.enqueued;
    metrics_.Add(grants_metric_, 1.0);
    metrics_.Observe(wait_metric_, waited.ToMillis());
    waiter.on_grant(waited, mb);
  }
}

}  // namespace dbscale::engine
