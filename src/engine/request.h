// Request (transaction/query) descriptors processed by the simulated engine.

#ifndef DBSCALE_ENGINE_REQUEST_H_
#define DBSCALE_ENGINE_REQUEST_H_

#include <cstdint>

#include "src/common/sim_time.h"

namespace dbscale::engine {

/// \brief The resource profile of one request, produced by the workload
/// generator from a transaction-class model.
struct RequestSpec {
  /// Total CPU work in milliseconds at full-core speed.
  double cpu_ms = 1.0;
  /// Buffer-pool page accesses performed by the request.
  int page_accesses = 0;
  /// Probability that each page access targets the working set.
  double hot_access_fraction = 0.95;
  /// Log bytes written at commit (KB); 0 for read-only requests.
  double log_kb = 0.0;
  /// Hot row this request locks exclusively for its duration; -1 for none.
  int lock_row = -1;
  /// Application-side time (ms) the transaction holds its lock beyond the
  /// engine work — multi-statement round trips, app logic between BEGIN and
  /// COMMIT. This is what makes lock contention insensitive to container
  /// size: no amount of resources shortens it.
  double lock_hold_extra_ms = 0.0;
  /// Workspace memory grant required before execution (MB); 0 for none.
  double grant_mb = 0.0;
  /// Transaction class (for per-class statistics only).
  int class_id = 0;
};

/// \brief Completion record for one request.
struct RequestResult {
  SimTime arrival;
  SimTime completion;
  Duration latency() const { return completion - arrival; }
  /// True when the request failed (lock-wait timeout).
  bool error = false;
  int class_id = 0;
};

}  // namespace dbscale::engine

#endif  // DBSCALE_ENGINE_REQUEST_H_
