#include "src/engine/server_queue.h"

#include <utility>

#include "src/common/check.h"

namespace dbscale::engine {

ServerQueue::ServerQueue(EventQueue* events, std::string name,
                         int num_servers, double speed)
    : events_(events),
      name_(std::move(name)),
      num_servers_(num_servers),
      speed_(speed),
      capacity_accrued_until_(events->Now()) {
  DBSCALE_CHECK(events != nullptr);
  DBSCALE_CHECK(num_servers >= 1);
  DBSCALE_CHECK(speed > 0.0);
}

void ServerQueue::Submit(double work, Completion on_complete) {
  DBSCALE_DCHECK(work > 0.0);
  queue_.push_back(Job{work, events_->Now(), std::move(on_complete)});
  TryDispatch();
}

void ServerQueue::SetCapacity(int num_servers, double speed) {
  DBSCALE_CHECK(num_servers >= 1);
  DBSCALE_CHECK(speed > 0.0);
  AccrueCapacity();
  num_servers_ = num_servers;
  speed_ = speed;
  // More servers may now be free; dispatch queued work. (A shrink leaves
  // busy_ > num_servers_ temporarily; dispatch stalls until drain.)
  TryDispatch();
}

void ServerQueue::TryDispatch() {
  while (busy_ < num_servers_ && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    const SimTime start = events_->Now();
    const Duration queue_wait = start - job.submitted;
    const Duration service = Duration::Seconds(job.work / speed_);
    const double work = job.work;
    events_->ScheduleAfter(
        service, [this, work, queue_wait, service,
                  on_complete = std::move(job.on_complete)]() mutable {
          --busy_;
          work_done_accum_ += work;
          ++jobs_completed_;
          metrics_.Add(jobs_metric_, 1.0);
          metrics_.Observe(wait_metric_, queue_wait.ToMillis());
          // Dispatch the next job before running the completion so that
          // the resource never idles while work is queued, regardless of
          // what the completion callback does.
          TryDispatch();
          on_complete(queue_wait, service);
        });
  }
}

void ServerQueue::AccrueCapacity() {
  const SimTime now = events_->Now();
  const double elapsed = (now - capacity_accrued_until_).ToSeconds();
  if (elapsed > 0.0) {
    capacity_accum_ += elapsed * total_rate();
    capacity_accrued_until_ = now;
  }
}

ServerQueue::UsageDelta ServerQueue::ConsumeUsage() {
  AccrueCapacity();
  UsageDelta delta{work_done_accum_, capacity_accum_};
  work_done_accum_ = 0.0;
  capacity_accum_ = 0.0;
  return delta;
}

}  // namespace dbscale::engine
