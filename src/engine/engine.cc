#include "src/engine/engine.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace dbscale::engine {

namespace {

using container::ContainerSpec;
using container::ResourceKind;
using telemetry::WaitClass;

int CpuServers(double cores) {
  return std::max(1, static_cast<int>(std::ceil(cores)));
}

}  // namespace

/// Per-request execution state threaded through the callback chain.
struct DatabaseEngine::RequestState {
  RequestSpec spec;
  SimTime arrival;
  CompletionHook done;

  int batches_total = 1;
  int batch_index = 0;
  double cpu_chunk_sec = 0.0;   // CPU work per interleave round
  int pages_per_batch = 0;
  int pages_remainder = 0;

  bool lock_held = false;
  double granted_mb = 0.0;
};

DatabaseEngine::DatabaseEngine(EventQueue* events,
                               const EngineOptions& options,
                               const ContainerSpec& initial_container,
                               Rng rng)
    : events_(events),
      options_(options),
      container_(initial_container),
      rng_(rng),
      period_start_(events->Now()) {
  DBSCALE_CHECK(events != nullptr);
  DBSCALE_CHECK(options.database_mb >= options.working_set_mb);
  DBSCALE_CHECK(options.buffer_pool_fraction > 0.0 &&
                options.buffer_pool_fraction <= 1.0);
  DBSCALE_CHECK(options.max_io_batches >= 1);

  const container::ResourceVector& r = container_.resources;
  cpu_ = std::make_unique<ServerQueue>(
      events_, "cpu", CpuServers(r.cpu_cores),
      r.cpu_cores / CpuServers(r.cpu_cores));
  disk_ = std::make_unique<ServerQueue>(events_, "disk", 1, r.disk_iops);
  log_ = std::make_unique<ServerQueue>(events_, "log", 1, r.log_mbps);
  buffer_pool_ = std::make_unique<BufferPool>(
      MbToPages(effective_memory_mb() * options_.buffer_pool_fraction),
      MbToPages(options_.working_set_mb), MbToPages(options_.database_mb),
      &rng_);
  locks_ = std::make_unique<LockManager>(events_, options_.num_hot_rows,
                                         options_.lock_timeout);
  memory_ = std::make_unique<MemoryBroker>(
      events_,
      effective_memory_mb() * (1.0 - options_.buffer_pool_fraction));
}

void DatabaseEngine::EnableObservability(obs::Observability* ob) {
  if (ob == nullptr) return;
  metrics_ = EngineMetrics::Register(&ob->registry());
  ob->AttachPrimary();
  metric_sink_ = obs::MetricSink{&ob->primary()};
  cpu_->SetMetrics(metric_sink_, metrics_.cpu_jobs_total,
                   metrics_.cpu_queue_wait_ms);
  disk_->SetMetrics(metric_sink_, metrics_.disk_jobs_total,
                    metrics_.disk_queue_wait_ms);
  log_->SetMetrics(metric_sink_, metrics_.log_jobs_total,
                   metrics_.log_queue_wait_ms);
  buffer_pool_->SetMetrics(metric_sink_, metrics_.buffer_pool_hits_total,
                           metrics_.buffer_pool_misses_total);
  locks_->SetMetrics(metric_sink_, metrics_.lock_grants_total,
                     metrics_.lock_timeouts_total, metrics_.lock_wait_ms);
  memory_->SetMetrics(metric_sink_, metrics_.memory_grants_total,
                      metrics_.memory_grant_wait_ms);
}

double DatabaseEngine::effective_memory_mb() const {
  double container_mb = container_.resources.memory_mb;
  if (memory_limit_mb_ >= 0.0) {
    return std::min(container_mb, memory_limit_mb_);
  }
  return container_mb;
}

Status DatabaseEngine::BeginResize(const ContainerSpec& spec) {
  if (staged_resize_.has_value()) {
    return Status::FailedPrecondition(
        "a resize is already in flight (one actuation channel)");
  }
  staged_resize_ = spec;
  return Status::OK();
}

Status DatabaseEngine::CompleteResize() {
  if (!staged_resize_.has_value()) {
    return Status::FailedPrecondition("no resize staged");
  }
  container_ = *staged_resize_;
  staged_resize_.reset();
  const container::ResourceVector& r = container_.resources;
  cpu_->SetCapacity(CpuServers(r.cpu_cores),
                    r.cpu_cores / CpuServers(r.cpu_cores));
  disk_->SetCapacity(1, r.disk_iops);
  log_->SetCapacity(1, r.log_mbps);
  // A container change resets any balloon override: the new allocation is
  // authoritative.
  memory_limit_mb_ = -1.0;
  ApplyMemory();
  return Status::OK();
}

Status DatabaseEngine::AbortResize() {
  if (!staged_resize_.has_value()) {
    return Status::FailedPrecondition("no resize staged");
  }
  staged_resize_.reset();
  return Status::OK();
}

void DatabaseEngine::SetHostThrottle(double factor) {
  DBSCALE_CHECK(factor >= 1.0);
  host_throttle_ = factor;
}

void DatabaseEngine::SetMemoryLimitMb(double mb) {
  DBSCALE_CHECK(mb >= 0.0);
  if (mb >= container_.resources.memory_mb) {
    memory_limit_mb_ = -1.0;
  } else {
    memory_limit_mb_ = mb;
  }
  ApplyMemory();
}

void DatabaseEngine::ClearMemoryLimit() {
  memory_limit_mb_ = -1.0;
  ApplyMemory();
}

void DatabaseEngine::ApplyMemory() {
  const double mb = effective_memory_mb();
  buffer_pool_->SetCapacity(MbToPages(mb * options_.buffer_pool_fraction));
  memory_->SetWorkspace(mb * (1.0 - options_.buffer_pool_fraction));
}

void DatabaseEngine::AddWait(RequestState* /*rs*/, WaitClass wc,
                             Duration wait) {
  if (wait > Duration::Zero()) {
    const double ms = wait.ToMillis();
    period_wait_ms_[static_cast<size_t>(wc)] += ms;
    metric_sink_.Add(
        metrics_.wait_ms_base + static_cast<obs::MetricId>(wc), ms);
  }
}

void DatabaseEngine::Submit(const RequestSpec& spec, CompletionHook done) {
  auto rs = std::make_shared<RequestState>();
  rs->spec = spec;
  rs->arrival = events_->Now();
  rs->done = std::move(done);

  // Partition the request's work into CPU/I-O interleave rounds.
  if (spec.page_accesses > 0) {
    rs->batches_total =
        std::min(options_.max_io_batches, spec.page_accesses);
  } else {
    rs->batches_total = 1;
  }
  rs->cpu_chunk_sec =
      std::max(spec.cpu_ms, 0.01) / 1000.0 / rs->batches_total;
  if (spec.page_accesses > 0) {
    rs->pages_per_batch = spec.page_accesses / rs->batches_total;
    rs->pages_remainder = spec.page_accesses % rs->batches_total;
  }

  ++requests_submitted_;
  ++period_started_;
  AcquireGrant(std::move(rs));
}

// Lifecycle ordering: grant -> read/compute batches -> hot-row lock (held
// through application think time and the commit's log write) -> finish.
// Acquiring the lock *after* the resource-bound work keeps hold times
// dominated by application time, so lock contention — unlike every other
// wait — does not shrink when the container grows. That is the paper's
// "bottleneck beyond resources" (Figure 13).

void DatabaseEngine::AcquireGrant(std::shared_ptr<RequestState> rs) {
  if (rs->spec.grant_mb <= 0.0 || memory_->workspace_mb() <= 0.0) {
    RunBatch(std::move(rs));
    return;
  }
  RequestState* raw = rs.get();
  memory_->Acquire(raw->spec.grant_mb,
                   [this, rs = std::move(rs)](Duration wait,
                                              double granted_mb) mutable {
                     rs->granted_mb = granted_mb;
                     AddWait(rs.get(), WaitClass::kMemory, wait);
                     RunBatch(std::move(rs));
                   });
}

void DatabaseEngine::AcquireLock(std::shared_ptr<RequestState> rs) {
  if (rs->spec.lock_row < 0) {
    WriteLog(std::move(rs));
    return;
  }
  const int row = rs->spec.lock_row % options_.num_hot_rows;
  RequestState* raw = rs.get();
  raw->spec.lock_row = row;
  locks_->Acquire(row, [this, rs = std::move(rs)](bool acquired,
                                                  Duration wait) mutable {
    AddWait(rs.get(), WaitClass::kLock, wait);
    if (!acquired) {
      // Lock-wait timeout: the transaction aborts.
      Finish(std::move(rs), /*error=*/true);
      return;
    }
    rs->lock_held = true;
    if (rs->spec.lock_hold_extra_ms > 0.0) {
      // Application think time inside the transaction: pure latency (not an
      // engine wait), spent while holding the lock.
      const Duration think =
          Duration::Millis(1) * rs->spec.lock_hold_extra_ms;
      events_->ScheduleAfter(think, [this, rs = std::move(rs)]() mutable {
        WriteLog(std::move(rs));
      });
      return;
    }
    WriteLog(std::move(rs));
  });
}

void DatabaseEngine::RunBatch(std::shared_ptr<RequestState> rs) {
  if (rs->batch_index >= rs->batches_total) {
    AcquireLock(std::move(rs));
    return;
  }
  const double chunk = rs->cpu_chunk_sec;
  cpu_->Submit(chunk, [this, rs = std::move(rs), chunk](
                          Duration queue_wait,
                          Duration service_time) mutable {
    // Signal wait: runnable-but-unscheduled time plus the stretch from
    // running on a sub-core allocation.
    Duration stretch = service_time - Duration::Seconds(chunk);
    AddWait(rs.get(), WaitClass::kCpu,
            queue_wait + (stretch > Duration::Zero() ? stretch
                                                     : Duration::Zero()));
    DoPageAccesses(std::move(rs));
  });
}

void DatabaseEngine::DoPageAccesses(std::shared_ptr<RequestState> rs) {
  int pages = rs->pages_per_batch;
  if (rs->batch_index == 0) pages += rs->pages_remainder;
  ++rs->batch_index;

  int misses = 0;
  bool pressure = buffer_pool_->UnderMemoryPressure();
  for (int i = 0; i < pages; ++i) {
    const bool hot = rng_.Bernoulli(rs->spec.hot_access_fraction);
    if (!buffer_pool_->Access(hot)) ++misses;
  }
  period_physical_reads_ += misses;

  if (misses == 0) {
    MaybeLatch(rs, [this, rs]() mutable { RunBatch(std::move(rs)); });
    return;
  }
  // One aggregated disk submission for the batch's misses. Only the
  // *queueing* delay counts as wait: the per-I/O pacing of the container's
  // IOPS quota is the device's nominal service, and counting it would make
  // every I/O-bearing request look wait-bound on small containers. Misses
  // caused by a pool smaller than the working set are attributed to the
  // buffer pool (memory pressure); others are plain disk I/O.
  const WaitClass wc = pressure ? WaitClass::kBufferPool : WaitClass::kDiskIo;
  disk_->Submit(static_cast<double>(misses),
                [this, rs = std::move(rs), wc](Duration queue_wait,
                                               Duration /*service*/) mutable {
                  AddWait(rs.get(), wc, queue_wait);
                  MaybeLatch(rs, [this, rs]() mutable {
                    RunBatch(std::move(rs));
                  });
                });
}

void DatabaseEngine::MaybeLatch(std::shared_ptr<RequestState> rs,
                                std::function<void()> next) {
  // Latch and background interference, as short pure delays.
  Duration delay = Duration::Zero();
  if (rng_.Bernoulli(options_.latch_probability)) {
    Duration latch =
        Duration::Millis(1) * rng_.Exponential(options_.latch_mean_ms);
    AddWait(rs.get(), WaitClass::kLatch, latch);
    delay += latch;
  }
  if (rng_.Bernoulli(options_.system_wait_probability)) {
    Duration sys =
        Duration::Millis(1) * rng_.Exponential(options_.system_wait_mean_ms);
    AddWait(rs.get(), WaitClass::kSystem, sys);
    delay += sys;
  }
  if (delay > Duration::Zero()) {
    events_->ScheduleAfter(delay, std::move(next));
  } else {
    next();
  }
}

void DatabaseEngine::WriteLog(std::shared_ptr<RequestState> rs) {
  if (rs->spec.log_kb <= 0.0) {
    Finish(std::move(rs), /*error=*/false);
    return;
  }
  const double mb = rs->spec.log_kb / 1024.0;
  log_->Submit(mb, [this, rs = std::move(rs)](Duration queue_wait,
                                              Duration service) mutable {
    // Log-write waits (WRITELOG) include the flush itself.
    AddWait(rs.get(), WaitClass::kLogIo, queue_wait + service);
    Finish(std::move(rs), /*error=*/false);
  });
}

void DatabaseEngine::Finish(std::shared_ptr<RequestState> rs, bool error) {
  if (rs->lock_held) {
    locks_->Release(rs->spec.lock_row);
    rs->lock_held = false;
  }
  if (rs->granted_mb > 0.0) {
    memory_->Release(rs->granted_mb);
    rs->granted_mb = 0.0;
  }
  ++requests_completed_;
  ++period_completed_;
  if (error) ++requests_errored_;

  RequestResult result;
  result.arrival = rs->arrival;
  result.completion = events_->Now();
  result.error = error;
  result.class_id = rs->spec.class_id;
  period_latency_.Add(result.latency().ToMillis());
  metric_sink_.Add(metrics_.requests_completed_total, 1.0);
  if (error) metric_sink_.Add(metrics_.requests_errored_total, 1.0);
  metric_sink_.Observe(metrics_.request_latency_ms,
                       result.latency().ToMillis());
  if (rs->done) rs->done(result);
  if (completion_listener_) completion_listener_(result);
}

void DatabaseEngine::SetCompletionListener(CompletionHook listener) {
  completion_listener_ = std::move(listener);
}

void DatabaseEngine::PrewarmBufferPool() { buffer_pool_->PrewarmHotSet(); }

telemetry::TelemetrySample DatabaseEngine::CollectSample() {
  telemetry::TelemetrySample sample;
  sample.period_start = period_start_;
  sample.period_end = events_->Now();

  const auto cpu_usage = cpu_->ConsumeUsage();
  const auto disk_usage = disk_->ConsumeUsage();
  const auto log_usage = log_->ConsumeUsage();
  auto util_at = [&sample](ResourceKind kind, double pct) {
    sample.utilization_pct[static_cast<size_t>(kind)] =
        std::clamp(pct, 0.0, 100.0);
  };
  util_at(ResourceKind::kCpu, cpu_usage.utilization_pct());
  util_at(ResourceKind::kDiskIo, disk_usage.utilization_pct());
  util_at(ResourceKind::kLogIo, log_usage.utilization_pct());
  const double memory_used =
      buffer_pool_->used_mb() + memory_->in_use_mb();
  const double memory_alloc = effective_memory_mb();
  util_at(ResourceKind::kMemory,
          memory_alloc > 0.0 ? 100.0 * memory_used / memory_alloc : 0.0);

  sample.wait_ms = period_wait_ms_;
  if (host_throttle_ != 1.0) {
    // Co-located demand beyond the host's capacity stretches every wait;
    // the guard keeps throttle-free runs bit-identical (a *= 1.0 could
    // still perturb signed zeros and is a needless pass).
    for (double& w : sample.wait_ms) w *= host_throttle_;
  }
  sample.requests_started = period_started_;
  sample.requests_completed = period_completed_;
  if (period_latency_.count() > 0) {
    sample.latency_avg_ms = period_latency_.mean();
    sample.latency_p95_ms = period_latency_.ValueAtPercentile(95.0);
    sample.latency_max_ms = period_latency_.max_seen();
  }
  sample.memory_used_mb = memory_used;
  sample.memory_active_mb =
      PagesToMb(buffer_pool_->hot_cached()) / options_.buffer_pool_fraction +
      memory_->in_use_mb();
  sample.physical_reads = period_physical_reads_;
  sample.allocation = container_.resources;
  // Report the ballooned allocation so the memory-utilization signal tracks
  // the effective limit.
  sample.allocation.memory_mb = memory_alloc;
  sample.container_id = container_.id;

  // Reset period accumulators.
  period_start_ = events_->Now();
  period_wait_ms_.fill(0.0);
  period_latency_.Reset();
  period_started_ = 0;
  period_completed_ = 0;
  period_physical_reads_ = 0;
  return sample;
}

}  // namespace dbscale::engine
