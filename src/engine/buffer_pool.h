// Statistical buffer pool model.
//
// Tracking millions of individual pages is unnecessary for scaling
// experiments; what matters is the *aggregate* behaviour the paper's signals
// react to:
//   * hit rate as a function of pool size vs. working-set size,
//   * slow warm-up (the pool refills one page per miss, so re-caching a
//     3 GB working set takes hundreds of thousands of I/Os — Figure 14's
//     "takes a long time for the working set to be entirely cached"),
//   * an I/O cliff the moment the pool shrinks below the working set
//     (ballooning's abort trigger),
//   * memory that is "rarely LOW": caches do not voluntarily release pages.
//
// Model: accesses target the hot set (working set, `working_set_pages`)
// with the workload's hotspot probability, otherwise a cold region of
// `database_pages`. The pool tracks how many hot/cold pages are currently
// cached; hot pages are only evicted when the pool cannot hold the full hot
// set, cold pages churn in the remainder.

#ifndef DBSCALE_ENGINE_BUFFER_POOL_H_
#define DBSCALE_ENGINE_BUFFER_POOL_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/obs/metrics.h"

namespace dbscale::engine {

/// 8 KB pages, matching SQL Server.
inline constexpr double kPageSizeMb = 8.0 / 1024.0;

inline int64_t MbToPages(double mb) {
  return static_cast<int64_t>(mb / kPageSizeMb);
}
inline double PagesToMb(int64_t pages) {
  return static_cast<double>(pages) * kPageSizeMb;
}

/// \brief Aggregate hot/cold page-cache model.
class BufferPool {
 public:
  /// \param capacity_pages pool size in pages.
  /// \param working_set_pages size of the workload's hot set.
  /// \param database_pages total data size (cold region =
  ///        database_pages - working_set_pages).
  BufferPool(int64_t capacity_pages, int64_t working_set_pages,
             int64_t database_pages, Rng* rng);

  /// Records one page access. \param hot whether the access targets the
  /// working set. Returns true on a cache hit; a miss implies one physical
  /// read (the caller issues it to the disk device) after which the page is
  /// cached.
  bool Access(bool hot);

  /// Online resize (container change or balloon step). Shrinking evicts
  /// cold pages first, then hot pages.
  void SetCapacity(int64_t capacity_pages);

  /// Marks the working set as fully cached (up to capacity): a steady-state
  /// start that skips the coupon-collector warm-up.
  void PrewarmHotSet();

  /// Changes the workload's working-set size (e.g. between experiments).
  void SetWorkingSet(int64_t working_set_pages);

  int64_t capacity_pages() const { return capacity_pages_; }
  int64_t working_set_pages() const { return working_set_pages_; }
  int64_t hot_cached() const { return hot_cached_; }
  int64_t cold_cached() const { return cold_cached_; }
  int64_t cached_pages() const { return hot_cached_ + cold_cached_; }
  double used_mb() const { return PagesToMb(cached_pages()); }

  /// True when the pool can no longer hold the entire working set — misses
  /// are then due to *memory pressure*, not warm-up.
  bool UnderMemoryPressure() const {
    return capacity_pages_ < working_set_pages_;
  }

  /// Fraction of hot accesses expected to hit right now.
  double HotHitProbability() const;

  /// Enables metrics: every Access bumps the hit or miss counter.
  /// Setup-time wiring; no-ops on a null sink.
  void SetMetrics(obs::MetricSink sink, obs::MetricId hits_total,
                  obs::MetricId misses_total) {
    metrics_ = sink;
    hits_metric_ = hits_total;
    misses_metric_ = misses_total;
  }

 private:
  bool AccessImpl(bool hot);
  void EvictTo(int64_t target_pages);

  int64_t capacity_pages_;
  int64_t working_set_pages_;
  int64_t database_pages_;
  int64_t hot_cached_ = 0;
  int64_t cold_cached_ = 0;
  Rng* rng_;

  obs::MetricSink metrics_;
  obs::MetricId hits_metric_ = 0;
  obs::MetricId misses_metric_ = 0;
};

}  // namespace dbscale::engine

#endif  // DBSCALE_ENGINE_BUFFER_POOL_H_
