// Application-level lock manager.
//
// Models the contention pattern that makes utilization-only auto-scaling
// over-provision: transactions serialize on a small set of hot rows, so
// latency degrades while every physical resource stays underutilized, and
// adding resources cannot help (paper Figure 13: lock waits > 90%).
//
// Exclusive FIFO locks on a fixed set of hot rows, with a wait timeout so
// overload produces bounded queues (a timed-out acquisition is granted
// "nothing" and the transaction proceeds to completion as an error, which is
// how engines surface lock timeouts).

#ifndef DBSCALE_ENGINE_LOCK_MANAGER_H_
#define DBSCALE_ENGINE_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/engine/event_queue.h"
#include "src/obs/metrics.h"

namespace dbscale::engine {

/// \brief FIFO exclusive locks over `num_rows` hot rows.
class LockManager {
 public:
  /// Called when the lock is granted (acquired == true) or the wait timed
  /// out (acquired == false), with the time spent waiting.
  using Grant = std::function<void(bool acquired, Duration wait)>;

  LockManager(EventQueue* events, int num_rows, Duration wait_timeout);

  /// Requests the exclusive lock on `row` (0 <= row < num_rows).
  void Acquire(int row, Grant on_grant);

  /// Releases the lock on `row`; the next FIFO waiter (if any) is granted
  /// immediately. Must only be called by the current holder.
  void Release(int row);

  int num_rows() const { return static_cast<int>(rows_.size()); }
  bool IsHeld(int row) const;
  size_t QueueLength(int row) const;
  uint64_t timeouts() const { return timeouts_; }
  uint64_t grants() const { return grants_; }

  /// Enables metrics: grants and timeouts bump their counters, and every
  /// resolution (either way) observes its wait (ms) into `wait_ms`.
  /// Setup-time wiring; no-ops on a null sink.
  void SetMetrics(obs::MetricSink sink, obs::MetricId grants_total,
                  obs::MetricId timeouts_total, obs::MetricId wait_ms) {
    metrics_ = sink;
    grants_metric_ = grants_total;
    timeouts_metric_ = timeouts_total;
    wait_metric_ = wait_ms;
  }

 private:
  struct Waiter {
    uint64_t ticket;
    SimTime enqueued;
    Grant on_grant;
    bool timed_out = false;
  };
  struct Row {
    bool held = false;
    std::deque<Waiter> waiters;
  };

  void GrantNext(int row);

  EventQueue* events_;
  Duration wait_timeout_;
  std::vector<Row> rows_;
  uint64_t next_ticket_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t grants_ = 0;

  obs::MetricSink metrics_;
  obs::MetricId grants_metric_ = 0;
  obs::MetricId timeouts_metric_ = 0;
  obs::MetricId wait_metric_ = 0;
};

}  // namespace dbscale::engine

#endif  // DBSCALE_ENGINE_LOCK_MANAGER_H_
