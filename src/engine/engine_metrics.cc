#include "src/engine/engine_metrics.h"

#include <string>

#include "src/common/check.h"
#include "src/telemetry/wait_class.h"

namespace dbscale::engine {

namespace {

using obs::HistogramSpec;
using obs::MetricRegistry;

// 0.05 ms .. ~1.6 s: covers sub-millisecond queueing on healthy containers
// through multi-second pile-ups under deep under-provisioning.
HistogramSpec WaitHistogram() {
  return HistogramSpec::Exponential(0.05, 2.0, 16);
}

}  // namespace

EngineMetrics EngineMetrics::Register(MetricRegistry* registry) {
  DBSCALE_CHECK(registry != nullptr);
  EngineMetrics m;

  m.cpu_jobs_total =
      registry->Counter("dbscale_engine_queue_jobs_total{queue=\"cpu\"}",
                        "Jobs completed by the CPU server queue.");
  m.cpu_queue_wait_ms = registry->Histogram(
      "dbscale_engine_queue_wait_ms{queue=\"cpu\"}",
      "Per-job CPU queueing delay (ms).", WaitHistogram());
  m.disk_jobs_total =
      registry->Counter("dbscale_engine_queue_jobs_total{queue=\"disk\"}",
                        "I/O batches completed by the disk device.");
  m.disk_queue_wait_ms = registry->Histogram(
      "dbscale_engine_queue_wait_ms{queue=\"disk\"}",
      "Per-batch disk queueing delay (ms).", WaitHistogram());
  m.log_jobs_total =
      registry->Counter("dbscale_engine_queue_jobs_total{queue=\"log\"}",
                        "Log writes completed by the log device.");
  m.log_queue_wait_ms = registry->Histogram(
      "dbscale_engine_queue_wait_ms{queue=\"log\"}",
      "Per-write log queueing delay (ms).", WaitHistogram());

  m.buffer_pool_hits_total =
      registry->Counter("dbscale_engine_buffer_pool_hits_total",
                        "Page accesses served from the buffer pool.");
  m.buffer_pool_misses_total =
      registry->Counter("dbscale_engine_buffer_pool_misses_total",
                        "Page accesses that required a physical read.");

  m.lock_grants_total =
      registry->Counter("dbscale_engine_lock_grants_total",
                        "Hot-row lock acquisitions granted.");
  m.lock_timeouts_total =
      registry->Counter("dbscale_engine_lock_timeouts_total",
                        "Hot-row lock waits that timed out (aborts).");
  m.lock_wait_ms = registry->Histogram(
      "dbscale_engine_lock_wait_ms",
      "Time spent waiting for a hot-row lock (ms), grants and timeouts.",
      WaitHistogram());

  m.memory_grants_total =
      registry->Counter("dbscale_engine_memory_grants_total",
                        "Workspace memory grants issued.");
  m.memory_grant_wait_ms = registry->Histogram(
      "dbscale_engine_memory_grant_wait_ms",
      "Time spent queued for a workspace memory grant (ms).",
      WaitHistogram());

  m.requests_completed_total =
      registry->Counter("dbscale_engine_requests_completed_total",
                        "Requests completed (including errors).");
  m.requests_errored_total =
      registry->Counter("dbscale_engine_requests_errored_total",
                        "Requests completed as errors (lock timeouts).");
  m.request_latency_ms = registry->Histogram(
      "dbscale_engine_request_latency_ms",
      "End-to-end request latency (ms).",
      HistogramSpec::Exponential(0.5, 2.0, 16));

  // One wait-time counter per class, ids contiguous from wait_ms_base so
  // the AddWait record path is a single offset (same layout contract as
  // scaler::RegisterDecisionCounters).
  for (telemetry::WaitClass wc : telemetry::kAllWaitClasses) {
    const std::string name =
        std::string("dbscale_engine_wait_ms_total{class=\"") +
        telemetry::WaitClassToString(wc) + "\"}";
    const obs::MetricId id = registry->Counter(
        name, "Milliseconds requests spent blocked, by wait class.");
    if (wc == telemetry::WaitClass::kCpu) {
      m.wait_ms_base = id;
    } else {
      DBSCALE_CHECK(id == m.wait_ms_base +
                              static_cast<obs::MetricId>(wc));
    }
  }
  return m;
}

}  // namespace dbscale::engine
