// A FIFO multi-server work queue — the shared model for the CPU scheduler,
// the disk device, and the log device.
//
// The resource has `num_servers` servers, each processing `speed` work units
// per second. A job of `work` units therefore occupies one server for
// work / speed seconds; jobs queue FIFO when all servers are busy. Container
// resizes change (num_servers, speed) online: jobs already in service finish
// at their original speed; queued jobs see the new capacity.
//
//   CPU:  work = core-seconds, num_servers = ceil(cores),
//         speed = cores / ceil(cores)  (a 0.5-core container runs a 10 ms
//         burst in 20 ms; queueing delay is the "signal wait")
//   Disk: work = #I/O operations, num_servers = 1, speed = IOPS
//   Log:  work = MB to flush,     num_servers = 1, speed = MB/s

#ifndef DBSCALE_ENGINE_SERVER_QUEUE_H_
#define DBSCALE_ENGINE_SERVER_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/engine/event_queue.h"
#include "src/obs/metrics.h"

namespace dbscale::engine {

/// \brief FIFO multi-server queue with online capacity changes and
/// utilization accounting.
class ServerQueue {
 public:
  /// Called at job completion with the queueing delay and the in-service
  /// time the job experienced.
  using Completion =
      std::function<void(Duration queue_wait, Duration service_time)>;

  ServerQueue(EventQueue* events, std::string name, int num_servers,
              double speed);

  /// Enqueues a job of `work` units (> 0).
  void Submit(double work, Completion on_complete);

  /// Online capacity change. In-service jobs are unaffected; takes effect
  /// for dispatches from now on. If the server count shrinks, excess busy
  /// servers drain naturally.
  void SetCapacity(int num_servers, double speed);

  int num_servers() const { return num_servers_; }
  double speed() const { return speed_; }
  double total_rate() const { return num_servers_ * speed_; }
  size_t queue_length() const { return queue_.size(); }
  int busy_servers() const { return busy_; }

  /// Work units completed and capacity integral (work units the resource
  /// *could* have completed) since the last call; used for utilization:
  /// utilization = work_done / capacity. Also advances the internal
  /// capacity-integration clock to Now().
  struct UsageDelta {
    double work_done = 0.0;
    double capacity = 0.0;
    double utilization_pct() const {
      return capacity > 0.0 ? 100.0 * work_done / capacity : 0.0;
    }
  };
  UsageDelta ConsumeUsage();

  uint64_t jobs_completed() const { return jobs_completed_; }

  /// Enables metrics: each completed job bumps `jobs_total` and observes
  /// its queueing delay (ms) into the `queue_wait_ms` histogram. Setup-time
  /// wiring; recording stays allocation-free and no-ops on a null sink.
  void SetMetrics(obs::MetricSink sink, obs::MetricId jobs_total,
                  obs::MetricId queue_wait_ms) {
    metrics_ = sink;
    jobs_metric_ = jobs_total;
    wait_metric_ = queue_wait_ms;
  }

 private:
  struct Job {
    double work;
    SimTime submitted;
    Completion on_complete;
  };

  void TryDispatch();
  void AccrueCapacity();

  EventQueue* events_;
  std::string name_;
  int num_servers_;
  double speed_;
  int busy_ = 0;
  std::deque<Job> queue_;

  // Usage accounting.
  double work_done_accum_ = 0.0;
  double capacity_accum_ = 0.0;
  SimTime capacity_accrued_until_ = SimTime::Zero();
  uint64_t jobs_completed_ = 0;

  obs::MetricSink metrics_;
  obs::MetricId jobs_metric_ = 0;
  obs::MetricId wait_metric_ = 0;
};

}  // namespace dbscale::engine

#endif  // DBSCALE_ENGINE_SERVER_QUEUE_H_
