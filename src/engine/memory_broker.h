// Workspace memory grants.
//
// Queries that sort/hash request a workspace memory grant before executing;
// when the workspace (a slice of container memory) is exhausted, requests
// queue — surfacing as *memory waits* in telemetry. A FIFO counting
// semaphore measured in MB.

#ifndef DBSCALE_ENGINE_MEMORY_BROKER_H_
#define DBSCALE_ENGINE_MEMORY_BROKER_H_

#include <deque>
#include <functional>

#include "src/engine/event_queue.h"
#include "src/obs/metrics.h"

namespace dbscale::engine {

/// \brief FIFO counting semaphore over workspace memory (MB).
class MemoryBroker {
 public:
  /// Receives the wait experienced and the MB actually granted (which may
  /// be clamped); the callee must Release() exactly `granted_mb`.
  using Grant = std::function<void(Duration wait, double granted_mb)>;

  MemoryBroker(EventQueue* events, double workspace_mb);

  /// Requests `mb` of workspace. Grants are FIFO; a request larger than the
  /// whole workspace is clamped to it (engines cap grants similarly).
  void Acquire(double mb, Grant on_grant);

  /// Returns `mb` of workspace (must match the granted amount).
  void Release(double mb);

  /// Online resize; queued requests re-evaluate against the new size.
  void SetWorkspace(double workspace_mb);

  double workspace_mb() const { return workspace_mb_; }
  double in_use_mb() const { return in_use_mb_; }
  size_t queue_length() const { return waiters_.size(); }

  /// Enables metrics: every grant bumps `grants_total` and observes the
  /// wait it queued (ms) into `wait_ms`. Setup-time wiring; no-ops on a
  /// null sink.
  void SetMetrics(obs::MetricSink sink, obs::MetricId grants_total,
                  obs::MetricId wait_ms) {
    metrics_ = sink;
    grants_metric_ = grants_total;
    wait_metric_ = wait_ms;
  }

 private:
  struct Waiter {
    double mb;
    SimTime enqueued;
    Grant on_grant;
  };

  void TryGrant();

  EventQueue* events_;
  double workspace_mb_;
  double in_use_mb_ = 0.0;
  std::deque<Waiter> waiters_;

  obs::MetricSink metrics_;
  obs::MetricId grants_metric_ = 0;
  obs::MetricId wait_metric_ = 0;
};

}  // namespace dbscale::engine

#endif  // DBSCALE_ENGINE_MEMORY_BROKER_H_
