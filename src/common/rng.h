// Deterministic random number generation.
//
// All stochastic behaviour in dbscale flows through Rng (a PCG32 generator)
// seeded explicitly by the caller, so every simulation and experiment is
// reproducible bit-for-bit. Wall-clock seeding is intentionally unsupported.

#ifndef DBSCALE_COMMON_RNG_H_
#define DBSCALE_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace dbscale {

/// \brief PCG32 pseudo-random generator with a suite of distribution
/// samplers used across the simulator.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same (seed, stream)
  /// produce identical sequences.
  explicit Rng(uint64_t seed, uint64_t stream = 0);

  /// Uniform 32-bit value.
  uint32_t NextUint32();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// True with probability p (p clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Exponential with the given mean (> 0).
  double Exponential(double mean);

  /// Standard normal via Box-Muller.
  double Normal(double mean, double stddev);

  /// Lognormal with log-space parameters mu and sigma. Heavy-tailed; used
  /// to model wait-time noise in the fleet telemetry model.
  double LogNormal(double mu, double sigma);

  /// Poisson-distributed count with the given mean. Uses inversion for
  /// small means and a normal approximation for large ones.
  int64_t Poisson(double mean);

  /// Zipf-like rank in [0, n) with skew theta in [0, 1); theta = 0 is
  /// uniform. Used for hotspot page-access patterns.
  int64_t Zipf(int64_t n, double theta);

  /// Splits off an independent generator (new stream derived from this one).
  Rng Fork();

  /// \brief Complete generator position: restoring it resumes the exact
  /// output sequence. Used by the fleet checkpoint format to make resumed
  /// runs bit-identical to uninterrupted ones.
  struct State {
    uint64_t state = 0;
    uint64_t inc = 0;
    /// Box-Muller cache (Normal() produces values in pairs; the unconsumed
    /// half is part of the position).
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };

  State SaveState() const;
  void RestoreState(const State& state);
  /// A generator positioned at `state` (equivalent to RestoreState on any
  /// instance).
  static Rng FromState(const State& state);

 private:
  uint64_t state_;
  uint64_t inc_;
  // Cached second output of Box-Muller.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace dbscale

#endif  // DBSCALE_COMMON_RNG_H_
