// Deterministic fork-join task pool.
//
// Fleet-scale runs (thousands of tenants) and multi-technique experiments
// are embarrassingly parallel, but every result in this repo must stay
// bit-reproducible. The pool therefore does plain dynamic index claiming —
// no work stealing, no per-thread queues — and callers are required to make
// each index write only to its own output slot; merging slots in index
// order afterwards makes the result independent of scheduling.
//
// Thread count resolution: an explicit constructor argument wins, else the
// DBSCALE_NUM_THREADS environment variable, else hardware concurrency.

#ifndef DBSCALE_COMMON_THREAD_POOL_H_
#define DBSCALE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dbscale {

/// \brief Fixed-size fork-join pool. One instance may be shared across the
/// process (see Global()); ParallelFor calls from different threads are
/// serialized against each other.
class ThreadPool {
 public:
  /// \param num_threads total parallelism including the calling thread
  ///        (clamped to >= 1). The pool spawns num_threads - 1 workers; the
  ///        caller participates in every ParallelFor.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(i) once for every i in [begin, end) and blocks until all
  /// complete. Indices are claimed dynamically, so fn must not depend on
  /// execution order and must write only to per-index state. The first
  /// exception thrown by fn is rethrown here (remaining indices are
  /// abandoned). Calls from inside a running ParallelFor body execute the
  /// nested range serially inline on the calling thread.
  ///
  /// `grain` is the claim granularity: each atomic claim takes a contiguous
  /// run of `grain` indices (executed in ascending order). With very cheap
  /// bodies (e.g. per-tenant init at fleet scale) a grain of a few thousand
  /// removes the fetch_add-per-index contention that otherwise caps
  /// scaling; results are unaffected because callers already may not depend
  /// on execution order.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t)>& fn,
                   int64_t grain = 1);

  /// DBSCALE_NUM_THREADS if set to a positive integer, else hardware
  /// concurrency (>= 1). Reads the environment on every call.
  static int DefaultNumThreads();

  /// Process-wide shared pool, sized by DefaultNumThreads() at first use.
  static ThreadPool& Global();

 private:
  void WorkerLoop();
  /// Claims and runs indices of the current job until none remain.
  void RunChunk();
  void RunSerial(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn);

  const int num_threads_;
  std::vector<std::thread> workers_;

  /// Serializes concurrent ParallelFor callers (one job at a time).
  std::mutex dispatch_mu_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;  ///< bumped per job; workers wait on changes
  int workers_active_ = 0;
  bool shutdown_ = false;

  // Current job; written under mu_ before the generation bump, read by
  // workers after they observe the bump.
  std::atomic<int64_t> next_{0};
  int64_t job_end_ = 0;
  int64_t job_grain_ = 1;
  const std::function<void(int64_t)>* job_fn_ = nullptr;
  std::exception_ptr job_error_;  ///< guarded by mu_
};

/// ParallelFor on the shared Global() pool.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn, int64_t grain = 1);

}  // namespace dbscale

#endif  // DBSCALE_COMMON_THREAD_POOL_H_
