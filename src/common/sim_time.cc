#include "src/common/sim_time.h"

#include <cinttypes>
#include <cstdio>

namespace dbscale {

std::string Duration::ToString() const {
  char buf[64];
  if (us_ >= 60'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fmin", ToMinutes());
  } else if (us_ >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ToSeconds());
  } else if (us_ >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ToMillis());
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "us", us_);
  }
  return buf;
}

std::string SimTime::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t=%.3fs", ToSeconds());
  return buf;
}

}  // namespace dbscale
