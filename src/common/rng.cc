#include "src/common/rng.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace dbscale {

namespace {
constexpr uint64_t kPcgMultiplier = 6364136223846793005ULL;
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

Rng::Rng(uint64_t seed, uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0u;
  NextUint32();
  state_ += seed;
  NextUint32();
}

uint32_t Rng::NextUint32() {
  uint64_t oldstate = state_;
  state_ = oldstate * kPcgMultiplier + inc_;
  uint32_t xorshifted =
      static_cast<uint32_t>(((oldstate >> 18u) ^ oldstate) >> 27u);
  uint32_t rot = static_cast<uint32_t>(oldstate >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Rng::NextDouble() {
  // 53-bit mantissa from two draws.
  uint64_t hi = NextUint32();
  uint64_t lo = NextUint32();
  uint64_t bits = ((hi << 32) | lo) >> 11;  // 53 bits
  return static_cast<double>(bits) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DBSCALE_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>((static_cast<uint64_t>(NextUint32()) << 32) |
                                NextUint32());
  }
  // Rejection-free modulo is fine here: span is tiny relative to 2^64 in all
  // simulator uses, so the bias is negligible.
  uint64_t draw = (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
  return lo + static_cast<int64_t>(draw % span);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  DBSCALE_DCHECK(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  u = std::max(u, 1e-300);
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = std::max(NextDouble(), 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double z0 = r * std::cos(kTwoPi * u2);
  double z1 = r * std::sin(kTwoPi * u2);
  cached_normal_ = z1;
  has_cached_normal_ = true;
  return mean + stddev * z0;
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

int64_t Rng::Poisson(double mean) {
  DBSCALE_DCHECK(mean >= 0);
  if (mean <= 0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    double limit = std::exp(-mean);
    double product = NextDouble();
    int64_t count = 0;
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }
  // Normal approximation with continuity correction.
  double draw = Normal(mean, std::sqrt(mean));
  return std::max<int64_t>(0, static_cast<int64_t>(std::llround(draw)));
}

int64_t Rng::Zipf(int64_t n, double theta) {
  DBSCALE_DCHECK(n > 0);
  if (theta <= 0.0) return UniformInt(0, n - 1);
  // Approximate inverse-CDF sampling of a Zipf-like (power-law) rank
  // distribution: rank ~ floor(n * u^(1/(1-theta))) concentrates mass on
  // low ranks as theta -> 1.
  double u = NextDouble();
  double exponent = 1.0 / (1.0 - std::min(theta, 0.999));
  int64_t rank = static_cast<int64_t>(
      static_cast<double>(n) * std::pow(u, exponent));
  return std::min(rank, n - 1);
}

Rng Rng::Fork() {
  uint64_t seed = (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
  uint64_t stream = (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
  return Rng(seed, stream);
}

Rng::State Rng::SaveState() const {
  State s;
  s.state = state_;
  s.inc = inc_;
  s.has_cached_normal = has_cached_normal_;
  s.cached_normal = cached_normal_;
  return s;
}

void Rng::RestoreState(const State& state) {
  state_ = state.state;
  inc_ = state.inc;
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

Rng Rng::FromState(const State& state) {
  Rng rng(0);
  rng.RestoreState(state);
  return rng;
}

}  // namespace dbscale
