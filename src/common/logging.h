// Minimal leveled logging to stderr.
//
// The simulator is single-threaded per run, so no locking is needed. The
// level is a process-global that experiments may raise for drill-down
// debugging; the default (kWarn) keeps benchmark output clean.

#ifndef DBSCALE_COMMON_LOGGING_H_
#define DBSCALE_COMMON_LOGGING_H_

#include <sstream>

namespace dbscale {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the process-wide minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define DBSCALE_LOG(level)                                      \
  ::dbscale::internal::LogMessage(::dbscale::LogLevel::level,   \
                                  __FILE__, __LINE__)

}  // namespace dbscale

#endif  // DBSCALE_COMMON_LOGGING_H_
