// Lightweight CHECK/DCHECK macros for internal invariants.
//
// CHECK fires in all builds; DCHECK only when NDEBUG is not defined. These
// guard programming errors (broken invariants), never recoverable runtime
// conditions — those must use Status.

#ifndef DBSCALE_COMMON_CHECK_H_
#define DBSCALE_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>

#define DBSCALE_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::cerr << "CHECK failed at " << __FILE__ << ":" << __LINE__     \
                << ": " #cond << std::endl;                              \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#define DBSCALE_CHECK_OK(expr)                                           \
  do {                                                                   \
    const ::dbscale::Status _st = (expr);                                \
    if (!_st.ok()) {                                                     \
      std::cerr << "CHECK_OK failed at " << __FILE__ << ":" << __LINE__  \
                << ": " << _st.ToString() << std::endl;                  \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#ifdef NDEBUG
#define DBSCALE_DCHECK(cond) \
  do {                       \
  } while (false)
#else
#define DBSCALE_DCHECK(cond) DBSCALE_CHECK(cond)
#endif

#endif  // DBSCALE_COMMON_CHECK_H_
