// Simulated-time primitives.
//
// All simulator timestamps and durations are int64 microseconds wrapped in
// strong types so that seconds/milliseconds cannot be mixed up silently.
// There is deliberately no conversion from wall-clock time.

#ifndef DBSCALE_COMMON_SIM_TIME_H_
#define DBSCALE_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace dbscale {

/// \brief A span of simulated time, microsecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Micros(int64_t us) { return Duration(us); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration Seconds(double s) {
    return Duration(static_cast<int64_t>(s * 1e6));
  }
  static constexpr Duration Minutes(double m) { return Seconds(m * 60.0); }
  static constexpr Duration Hours(double h) { return Minutes(h * 60.0); }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() {
    return Duration(INT64_MAX);
  }

  constexpr int64_t ToMicros() const { return us_; }
  constexpr double ToMillis() const { return static_cast<double>(us_) / 1e3; }
  constexpr double ToSeconds() const { return static_cast<double>(us_) / 1e6; }
  constexpr double ToMinutes() const { return ToSeconds() / 60.0; }

  constexpr Duration operator+(Duration o) const {
    return Duration(us_ + o.us_);
  }
  constexpr Duration operator-(Duration o) const {
    return Duration(us_ - o.us_);
  }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(us_) * k));
  }
  constexpr Duration operator/(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(us_) / k));
  }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(us_) / static_cast<double>(o.us_);
  }
  Duration& operator+=(Duration o) {
    us_ += o.us_;
    return *this;
  }
  Duration& operator-=(Duration o) {
    us_ -= o.us_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr Duration(int64_t us) : us_(us) {}
  int64_t us_ = 0;
};

/// \brief An instant on the simulated timeline (microseconds since
/// simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime FromMicros(int64_t us) { return SimTime(us); }
  static constexpr SimTime Zero() { return SimTime(0); }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t ToMicros() const { return us_; }
  constexpr double ToSeconds() const { return static_cast<double>(us_) / 1e6; }
  constexpr double ToMinutes() const { return ToSeconds() / 60.0; }

  constexpr SimTime operator+(Duration d) const {
    return SimTime(us_ + d.ToMicros());
  }
  constexpr SimTime operator-(Duration d) const {
    return SimTime(us_ - d.ToMicros());
  }
  constexpr Duration operator-(SimTime o) const {
    return Duration::Micros(us_ - o.us_);
  }
  SimTime& operator+=(Duration d) {
    us_ += d.ToMicros();
    return *this;
  }
  constexpr auto operator<=>(const SimTime&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr SimTime(int64_t us) : us_(us) {}
  int64_t us_ = 0;
};

}  // namespace dbscale

#endif  // DBSCALE_COMMON_SIM_TIME_H_
