// Small string helpers shared across modules.

#ifndef DBSCALE_COMMON_STRING_UTIL_H_
#define DBSCALE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dbscale {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

/// Parses a double; returns false on malformed input.
bool ParseDouble(std::string_view s, double* out);

/// Appends `field` to `out` as one RFC 4180 CSV field: wrapped in double
/// quotes when it contains a comma, quote, CR, or LF, with embedded quotes
/// doubled. Append-style so hot report paths stay allocation-free.
void CsvEscapeTo(std::string_view field, std::string& out);

/// Allocating convenience wrapper around CsvEscapeTo.
std::string CsvEscape(std::string_view field);

}  // namespace dbscale

#endif  // DBSCALE_COMMON_STRING_UTIL_H_
