// Incremental FNV-1a over raw value bytes: the digest primitive shared by
// the streaming fleet aggregation, the checkpoint footer hash, and the
// host-placement accounting digest. Lives in common/ so layers below
// fleet/ (host/, ingest/) can fold digests without a fleet dependency;
// fleet re-exports it as fleet::Fnv64Stream for existing call sites.

#ifndef DBSCALE_COMMON_FNV_H_
#define DBSCALE_COMMON_FNV_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace dbscale {

struct Fnv64Stream {
  uint64_t value = 14695981039346656037ULL;

  void Bytes(const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      value ^= static_cast<uint64_t>(p[i]);
      value *= 1099511628211ULL;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void I32(int32_t v) { Bytes(&v, sizeof(v)); }
  /// Hashes the bit pattern: digests compare doubles exactly, not "close".
  void Dbl(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
};

}  // namespace dbscale

#endif  // DBSCALE_COMMON_FNV_H_
