// Result<T>: value-or-Status, the companion of status.h for functions that
// produce a value on success.

#ifndef DBSCALE_COMMON_RESULT_H_
#define DBSCALE_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "src/common/status.h"

namespace dbscale {

/// \brief Holds either a successfully computed T or the Status describing
/// why the computation failed.
///
/// A Result constructed from an OK status is invalid; the error status must
/// carry a non-OK code.
///
/// [[nodiscard]]: discarding a Result drops both the computed value and any
/// error, so call sites must consume it (or cast to void with an inline
/// `dbscale-lint: allow(discarded-status)` annotation when intentional).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Wraps a success value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Wraps an error. `status` must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      // Programming error: an OK status carries no value. Fail loudly.
      std::cerr << "Result<T> constructed from OK Status" << std::endl;
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; Status::OK() if this holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Access the value. Must only be called when ok().
  const T& value() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result<T>::value() on error: "
                << std::get<Status>(repr_).ToString() << std::endl;
      std::abort();
    }
  }

  std::variant<T, Status> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status from the enclosing function.
#define DBSCALE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define DBSCALE_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  DBSCALE_ASSIGN_OR_RETURN_IMPL(                                          \
      DBSCALE_CONCAT_NAME(_dbscale_result_, __LINE__), lhs, rexpr)

#define DBSCALE_CONCAT_NAME_INNER(x, y) x##y
#define DBSCALE_CONCAT_NAME(x, y) DBSCALE_CONCAT_NAME_INNER(x, y)

}  // namespace dbscale

#endif  // DBSCALE_COMMON_RESULT_H_
