#include "src/common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace dbscale {

namespace {

// True while this thread is executing a ParallelFor body; nested calls must
// not re-enter the pool (the workers are already busy) so they run inline.
thread_local bool t_in_parallel_region = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    RunChunk();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_active_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::RunChunk() {
  t_in_parallel_region = true;
  const std::function<void(int64_t)>* fn = job_fn_;
  const int64_t end = job_end_;
  const int64_t grain = job_grain_;
  for (;;) {
    const int64_t first = next_.fetch_add(grain, std::memory_order_relaxed);
    if (first >= end) break;
    const int64_t last = std::min(first + grain, end);
    bool abandoned = false;
    for (int64_t i = first; i < last && !abandoned; ++i) {
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!job_error_) job_error_ = std::current_exception();
        // Abandon the remaining indices; workers drain out on the next
        // claim.
        next_.store(end, std::memory_order_relaxed);
        abandoned = true;
      }
    }
    if (abandoned) break;
  }
  t_in_parallel_region = false;
}

void ThreadPool::RunSerial(int64_t begin, int64_t end,
                           const std::function<void(int64_t)>& fn) {
  const bool was_inside = t_in_parallel_region;
  t_in_parallel_region = true;
  try {
    for (int64_t i = begin; i < end; ++i) fn(i);
  } catch (...) {
    t_in_parallel_region = was_inside;
    throw;
  }
  t_in_parallel_region = was_inside;
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t)>& fn,
                             int64_t grain) {
  if (begin >= end) return;
  grain = std::max<int64_t>(1, grain);
  if (workers_.empty() || end - begin <= grain || t_in_parallel_region) {
    RunSerial(begin, end, fn);
    return;
  }

  std::lock_guard<std::mutex> dispatch(dispatch_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_end_ = end;
    job_grain_ = grain;
    next_.store(begin, std::memory_order_relaxed);
    job_error_ = nullptr;
    workers_active_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  RunChunk();

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return workers_active_ == 0; });
  job_fn_ = nullptr;
  if (job_error_) {
    std::exception_ptr error = job_error_;
    job_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

int ThreadPool::DefaultNumThreads() {
  const char* env = std::getenv("DBSCALE_NUM_THREADS");
  if (env != nullptr && *env != '\0') {
    char* parse_end = nullptr;
    const long value = std::strtol(env, &parse_end, 10);
    if (parse_end != env && *parse_end == '\0' && value >= 1 &&
        value <= 1024) {
      return static_cast<int>(value);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultNumThreads());
  return *pool;
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn, int64_t grain) {
  ThreadPool::Global().ParallelFor(begin, end, fn, grain);
}

}  // namespace dbscale
