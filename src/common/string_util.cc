#include "src/common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace dbscale {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                   s[b] == '\n')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool ParseDouble(std::string_view s, double* out) {
  s = StrTrim(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

void CsvEscapeTo(std::string_view field, std::string& out) {
  const bool needs_quoting =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quoting) {
    out.append(field);
    return;
  }
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

std::string CsvEscape(std::string_view field) {
  std::string out;
  CsvEscapeTo(field, out);
  return out;
}

}  // namespace dbscale
