// Status-based error handling for dbscale.
//
// The library does not throw exceptions across its public API. Fallible
// operations return a Status (or a Result<T>, see result.h). The style
// follows the conventions used by Arrow and RocksDB.

#ifndef DBSCALE_COMMON_STATUS_H_
#define DBSCALE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dbscale {

/// Machine-readable classification of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kResourceExhausted = 5,
  kAlreadyExists = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kIoError = 9,
};

/// \brief Returns a stable human-readable name for a status code
/// (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief The result of a fallible operation: either OK or an error code
/// plus message.
///
/// Status is cheap to copy in the OK case (a single pointer). Error states
/// allocate a small heap record holding the code and message.
///
/// [[nodiscard]]: a dropped Status is a silently-swallowed error, so every
/// call site must inspect, propagate, or explicitly discard the value.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : new State{code, std::move(message)}) {}

  ~Status() { delete state_; }

  Status(const Status& other)
      : state_(other.state_ ? new State(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      delete state_;
      state_ = other.state_ ? new State(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&& other) noexcept : state_(other.state_) {
    other.state_ = nullptr;
  }
  Status& operator=(Status&& other) noexcept {
    if (this != &other) {
      delete state_;
      state_ = other.state_;
      other.state_ = nullptr;
    }
    return *this;
  }

  /// Factory helpers, one per error class.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return state_ == nullptr; }
  [[nodiscard]] StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  /// Error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  State* state_ = nullptr;  // nullptr means OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates an error Status from the enclosing function.
#define DBSCALE_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::dbscale::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (false)

}  // namespace dbscale

#endif  // DBSCALE_COMMON_STATUS_H_
