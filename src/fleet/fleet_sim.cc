#include "src/fleet/fleet_sim.h"

#include <algorithm>
#include <cmath>

#include "src/common/thread_pool.h"
#include "src/stats/robust.h"

namespace dbscale::fleet {

using container::ResourceKind;

namespace {
constexpr int kIntervalsPerHour = 12;  // 5-minute intervals
constexpr double kIntervalMinutes = 5.0;
}  // namespace

double FleetTelemetry::OneStepFraction() const {
  int64_t total = 0, ones = 0;
  for (size_t s = 1; s < step_size_counts.size(); ++s) {
    total += step_size_counts[s];
    if (s == 1) ones += step_size_counts[s];
  }
  return total > 0 ? static_cast<double>(ones) / static_cast<double>(total)
                   : 0.0;
}

double FleetTelemetry::AtMostTwoStepFraction() const {
  int64_t total = 0, small = 0;
  for (size_t s = 1; s < step_size_counts.size(); ++s) {
    total += step_size_counts[s];
    if (s <= 2) small += step_size_counts[s];
  }
  return total > 0 ? static_cast<double>(small) / static_cast<double>(total)
                   : 0.0;
}

FleetSimulator::FleetSimulator(const container::Catalog& catalog,
                               FleetOptions options)
    : catalog_(catalog), options_(options) {}

FleetSimulator::TenantPartial FleetSimulator::SimulateTenant(
    int tenant, Rng rng, obs::MetricSink sink) const {
  TenantPartial out;
  out.step_size_counts.assign(static_cast<size_t>(catalog_.num_rungs()) + 1,
                              0);
  const obs::PipelineMetrics* pm = nullptr;
  if (sink.enabled()) {
    pm = &options_.obs->pipeline();
    sink.Add(pm->fleet_tenants_total, 1.0);
  }
  const double days = static_cast<double>(options_.num_intervals) *
                      kIntervalMinutes / (60.0 * 24.0);

  // Fault stream forked from the tenant RNG BEFORE the model consumes it,
  // and ONLY when enabled: a null plan leaves the model's stream — and the
  // whole fleet digest — bit-identical to a build without the fault layer.
  fault::FaultPlan plan;
  if (options_.fault.enabled()) {
    plan = fault::FaultPlan(options_.fault, rng.Fork());
  }
  const bool faulty = plan.enabled();
  fault::ResizeActuator actuator(&plan);
  // Rung the tenant actually runs on under fault injection; lags
  // assigned_rung by at least one interval (actuation latency).
  int applied_rung = -1;

  TenantModel model(tenant, &catalog_, options_.tenant, rng);

  int prev_rung = -1;
  int last_change_interval = -1;
  int changes = 0;

  std::array<std::vector<double>, container::kNumResources> hour_util;
  std::array<std::vector<double>, container::kNumResources> hour_wait;
  std::array<std::vector<double>, container::kNumResources> hour_pct;
  std::array<std::vector<double>, container::kNumResources> hour_wpr;
  for (ResourceKind kind : container::kAllResources) {
    const size_t ri = static_cast<size_t>(kind);
    hour_util[ri].reserve(kIntervalsPerHour);
    hour_wait[ri].reserve(kIntervalsPerHour);
    hour_pct[ri].reserve(kIntervalsPerHour);
    hour_wpr[ri].reserve(kIntervalsPerHour);
  }
  out.hourly.reserve(
      static_cast<size_t>(options_.num_intervals / kIntervalsPerHour));

  for (int t = 0; t < options_.num_intervals; ++t) {
    // An in-flight resize resolves at the START of the interval: on
    // success the new container serves this interval's demand.
    if (faulty && actuator.pending()) {
      const fault::ResizeEvent ev = actuator.Tick();
      if (ev.kind == fault::ResizeEventKind::kApplied) {
        applied_rung = ev.target.base_rung;
      } else if (ev.kind == fault::ResizeEventKind::kFailed) {
        ++out.resize_failures;
        if (pm != nullptr) sink.Add(pm->fleet_resize_failures_total, 1.0);
      }
    }

    const TenantInterval interval = model.Step(t, faulty ? applied_rung : -1);

    if (faulty) {
      if (applied_rung < 0) {
        // First interval: the tenant starts on its assigned container.
        applied_rung = interval.assigned_rung;
      } else if (!actuator.pending() &&
                 interval.assigned_rung != applied_rung) {
        const fault::ResizeEvent ev =
            actuator.Begin(catalog_.rung(interval.assigned_rung));
        if (ev.attempt > 1) {
          ++out.resize_retries;
          if (pm != nullptr) sink.Add(pm->fleet_resize_retries_total, 1.0);
        }
        if (ev.kind == fault::ResizeEventKind::kApplied) {
          applied_rung = ev.target.base_rung;
        } else if (ev.kind == fault::ResizeEventKind::kFailed ||
                   ev.kind == fault::ResizeEventKind::kRejected) {
          ++out.resize_failures;
          if (pm != nullptr) sink.Add(pm->fleet_resize_failures_total, 1.0);
        }
      }
    }

    // Change-event tracking (Figure 2): under fault injection, track the
    // container the tenant actually LANDED on, not the one it wanted.
    const int observed_rung =
        faulty ? applied_rung : interval.assigned_rung;

    if (prev_rung >= 0 && observed_rung != prev_rung) {
      ++changes;
      const int step = std::abs(observed_rung - prev_rung);
      out.step_size_counts[static_cast<size_t>(
          std::min<int>(step, catalog_.num_rungs()))] += 1;
      if (pm != nullptr) {
        sink.Add(pm->fleet_container_changes_total, 1.0);
        sink.Observe(pm->fleet_change_step_rungs,
                     static_cast<double>(step));
      }
      if (last_change_interval >= 0) {
        const double minutes = (t - last_change_interval) * kIntervalMinutes;
        out.inter_event_minutes.push_back(minutes);
        if (pm != nullptr) {
          sink.Observe(pm->fleet_inter_event_minutes, minutes);
        }
      }
      last_change_interval = t;
    }
    prev_rung = observed_rung;
    if (pm != nullptr) sink.Add(pm->fleet_tenant_intervals_total, 1.0);

    // Hourly aggregation.
    for (ResourceKind kind : container::kAllResources) {
      const size_t ri = static_cast<size_t>(kind);
      hour_util[ri].push_back(interval.utilization_pct[ri]);
      hour_wait[ri].push_back(interval.wait_ms[ri]);
      hour_pct[ri].push_back(interval.wait_pct[ri]);
      hour_wpr[ri].push_back(
          interval.wait_ms[ri] /
          static_cast<double>(std::max<int64_t>(1, interval.completed)));
    }
    if ((t + 1) % kIntervalsPerHour == 0) {
      HourlyRecord record;
      record.tenant_id = tenant;
      record.hour = t / kIntervalsPerHour;
      for (ResourceKind kind : container::kAllResources) {
        const size_t ri = static_cast<size_t>(kind);
        record.utilization_pct[ri] =
            stats::MedianInPlace(hour_util[ri]).value_or(0.0);
        record.wait_ms[ri] =
            stats::MedianInPlace(hour_wait[ri]).value_or(0.0);
        record.wait_pct[ri] =
            stats::MedianInPlace(hour_pct[ri]).value_or(0.0);
        record.wait_ms_per_request[ri] =
            stats::MedianInPlace(hour_wpr[ri]).value_or(0.0);
        hour_util[ri].clear();
        hour_wait[ri].clear();
        hour_pct[ri].clear();
        hour_wpr[ri].clear();
      }
      out.hourly.push_back(record);
      if (pm != nullptr) sink.Add(pm->fleet_hourly_records_total, 1.0);
    }
  }
  out.changes =
      TenantChangeStats{tenant, changes, days > 0.0 ? changes / days : 0.0};
  return out;
}

Result<FleetTelemetry> FleetSimulator::Run() const {
  if (options_.num_tenants <= 0 || options_.num_intervals <= 0) {
    return Status::InvalidArgument(
        "num_tenants and num_intervals must be positive");
  }
  if (options_.block_size <= 0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  DBSCALE_RETURN_IF_ERROR(options_.fault.Validate());

  // Observability setup (instrument registration is not thread-safe, so
  // the primary and the block shard pool are sized before the fan-out).
  const int num_blocks =
      (options_.num_tenants + options_.block_size - 1) / options_.block_size;
  obs::ShardPool shard_pool;
  if (options_.obs != nullptr) {
    options_.obs->AttachPrimary();
    shard_pool.Attach(&options_.obs->registry(),
                      static_cast<size_t>(num_blocks));
  }

  // Pre-fork every tenant's generator from the root *before* dispatch: the
  // fork sequence — and therefore each tenant's stream — is fixed by the
  // seed alone, independent of how tenants are later scheduled on threads.
  Rng root(options_.seed);
  std::vector<Rng> tenant_rngs;
  tenant_rngs.reserve(static_cast<size_t>(options_.num_tenants));
  for (int tenant = 0; tenant < options_.num_tenants; ++tenant) {
    tenant_rngs.push_back(root.Fork());
  }

  // Block-sharded fan-out: each claim simulates one contiguous tenant
  // block into per-tenant partials plus the block's pooled metric shard.
  std::vector<TenantPartial> partials(
      static_cast<size_t>(options_.num_tenants));
  auto simulate_block = [&](int64_t block) {
    const int begin = static_cast<int>(block) * options_.block_size;
    const int end =
        std::min(begin + options_.block_size, options_.num_tenants);
    obs::MetricSink sink;
    if (shard_pool.attached()) {
      sink.shard = &shard_pool.shard(static_cast<size_t>(block));
    }
    for (int tenant = begin; tenant < end; ++tenant) {
      partials[static_cast<size_t>(tenant)] = SimulateTenant(
          tenant, tenant_rngs[static_cast<size_t>(tenant)], sink);
    }
  };
  if (options_.num_threads == 0) {
    ThreadPool::Global().ParallelFor(0, num_blocks, simulate_block);
  } else {
    ThreadPool pool(options_.num_threads);
    pool.ParallelFor(0, num_blocks, simulate_block);
  }

  // Merge in tenant order: byte-identical output at any thread count.
  FleetTelemetry out;
  out.num_tenants = options_.num_tenants;
  out.num_intervals = options_.num_intervals;
  out.step_size_counts.assign(static_cast<size_t>(catalog_.num_rungs()) + 1,
                              0);
  size_t hourly_total = 0, iei_total = 0;
  for (const TenantPartial& p : partials) {
    hourly_total += p.hourly.size();
    iei_total += p.inter_event_minutes.size();
  }
  out.hourly.reserve(hourly_total);
  out.inter_event_minutes.reserve(iei_total);
  out.tenant_changes.reserve(partials.size());
  for (TenantPartial& p : partials) {
    out.hourly.insert(out.hourly.end(), p.hourly.begin(), p.hourly.end());
    out.inter_event_minutes.insert(out.inter_event_minutes.end(),
                                   p.inter_event_minutes.begin(),
                                   p.inter_event_minutes.end());
    out.tenant_changes.push_back(p.changes);
    out.resize_failures += p.resize_failures;
    out.resize_retries += p.resize_retries;
    for (size_t s = 0; s < p.step_size_counts.size(); ++s) {
      out.step_size_counts[s] += p.step_size_counts[s];
    }
  }
  // Pooled shards merge in block order. All fleet recordings are
  // integer-valued adds, so the result is bitwise identical to the
  // historical per-tenant merge at any thread count.
  if (options_.obs != nullptr) {
    shard_pool.MergeInto(&options_.obs->primary());
  }
  return out;
}

}  // namespace dbscale::fleet
