#include "src/fleet/calibrator.h"

#include <algorithm>
#include <cmath>

#include "src/fleet/wait_analysis.h"

namespace dbscale::fleet {

ThresholdCalibrator::ThresholdCalibrator(CalibratorOptions options)
    : options_(options) {}

Result<scaler::SignalThresholds> ThresholdCalibrator::Calibrate(
    const FleetTelemetry& fleet,
    const scaler::SignalThresholds& base) const {
  scaler::SignalThresholds out = base;

  for (container::ResourceKind kind : container::kAllResources) {
    DBSCALE_ASSIGN_OR_RETURN(
        WaitSplitCdfs split,
        AnalyzeWaitSplit(fleet, kind, options_.low_util_below_pct,
                         options_.high_util_above_pct));

    DBSCALE_ASSIGN_OR_RETURN(
        double low_threshold,
        split.wait_per_req_low_util.ValueAtPercentile(
            options_.low_group_percentile));
    DBSCALE_ASSIGN_OR_RETURN(
        double high_threshold,
        split.wait_per_req_high_util.ValueAtPercentile(
            options_.high_group_percentile));
    // Distributions overlap; keep the categories ordered with real
    // separation even when the percentiles cross.
    low_threshold = std::max(low_threshold, 1e-3);
    if (high_threshold < 2.0 * low_threshold) {
      high_threshold = 2.0 * low_threshold;
    }

    DBSCALE_ASSIGN_OR_RETURN(
        double share_low_p80,
        split.wait_pct_low_util.ValueAtPercentile(80.0));
    DBSCALE_ASSIGN_OR_RETURN(
        double share_high_p50,
        split.wait_pct_high_util.ValueAtPercentile(50.0));
    double share_threshold =
        std::sqrt(std::max(1.0, share_low_p80) *
                  std::max(1.0, share_high_p50));
    share_threshold = std::clamp(share_threshold, 10.0, 60.0);

    scaler::ResourceThresholds& rt = out.For(kind);
    rt.wait_low_ms_per_req = low_threshold;
    rt.wait_high_ms_per_req = high_threshold;
    rt.wait_pct_significant = share_threshold;
  }

  DBSCALE_RETURN_IF_ERROR(out.Validate());
  return out;
}

}  // namespace dbscale::fleet
