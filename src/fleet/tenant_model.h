// Analytic per-tenant demand/telemetry model for the fleet simulator.
//
// The paper calibrates its wait thresholds and motivates auto-scaling from
// *service-wide* telemetry: thousands of tenants observed at 5-minute
// granularity over a week (Sections 2.2 and 4.1, Figures 2, 4 and 6). The
// full DES engine is far too heavy for thousands of tenants, and the
// analyses only consume aggregate statistics, so the fleet layer uses a
// closed-form model per tenant-interval:
//
//   * demand: a per-tenant base scale (lognormal across the catalog range)
//     modulated by a pattern (steady / diurnal / bursty / spiky / growth)
//     with AR(1) noise — giving the frequent container-boundary crossings
//     of Figure 2;
//   * waits: queueing-flavoured growth with utilization, u/(1-u), times
//     heavy-tailed lognormal noise, plus occasional wait storms unrelated
//     to utilization and a per-tenant "smooth" factor — reproducing the
//     weak, wide-band correlation of Figure 4 and the low/high-utilization
//     separation of Figure 6.
//
// The model state is split for the million-tenant SoA runner
// (fleet_scale.h): TenantParams holds the constants drawn once at init,
// TenantDynamics the two mutable scalars the step recurrence carries, and
// the Rng its own position. DrawTenantParams/StepTenant are the shared
// kernels; the TenantModel class wraps them for single-tenant callers and
// draws bit-identically to both.

#ifndef DBSCALE_FLEET_TENANT_MODEL_H_
#define DBSCALE_FLEET_TENANT_MODEL_H_

#include <array>

#include "src/common/rng.h"
#include "src/container/catalog.h"

namespace dbscale::fleet {

/// Demand shape over time.
enum class DemandPattern { kSteady, kDiurnal, kBursty, kSpiky, kGrowth };

const char* DemandPatternToString(DemandPattern p);

/// Telemetry produced by one tenant for one 5-minute interval.
struct TenantInterval {
  /// Demand in absolute units (cores, MB, IOPS, MB/s).
  container::ResourceVector demand;
  /// Smallest container rung covering the demand.
  int assigned_rung = 0;
  /// Utilization of the assigned container (percent, capped at 100).
  std::array<double, container::kNumResources> utilization_pct{};
  /// Total wait ms in the interval, per resource dimension.
  std::array<double, container::kNumResources> wait_ms{};
  /// Wait share per resource (percent of the interval's total waits).
  std::array<double, container::kNumResources> wait_pct{};
  /// Requests completed in the interval.
  int64_t completed = 0;
};

/// Model parameters (defaults tuned to reproduce the paper's fleet
/// statistics; see bench_fig02/fig04/fig06).
struct TenantModelOptions {
  /// Pattern mix (must sum to ~1).
  double p_steady = 0.38;
  double p_diurnal = 0.28;
  double p_bursty = 0.16;
  double p_spiky = 0.08;
  double p_growth = 0.10;
  /// AR(1) noise persistence and innovation sigma (log space). The sigma
  /// is a fleet median; per-tenant volatility is lognormal around it
  /// (ar_sigma_spread), giving the paper's heterogeneity: some tenants
  /// never cross a container boundary, others cross dozens of times a day.
  double ar_rho = 0.95;
  double ar_sigma = 0.02;
  double ar_sigma_spread = 1.4;
  /// Wait-model noise sigma (log space) and storm probability.
  double wait_noise_sigma = 1.3;
  double storm_probability = 0.06;
  /// Fraction of tenants whose workload queues little even when busy.
  double smooth_fraction = 0.35;
  /// Intervals per day (5-minute intervals).
  int intervals_per_day = 288;
};

/// Per-tenant constants, drawn once from the tenant's forked generator.
/// Read every interval but never written after init — the SoA runner keeps
/// one contiguous array of these beside the hot mutable state.
struct TenantParams {
  DemandPattern pattern = DemandPattern::kSteady;
  container::ResourceVector base_demand;
  double ar_sigma = 0.1;  ///< per-tenant innovation sigma
  bool smooth = false;
  double base_rate_rps = 1.0;
  /// Per-resource wait-scale personality.
  std::array<double, container::kNumResources> wait_scale{};
};

/// The mutable per-interval recurrence state (besides the Rng position).
struct TenantDynamics {
  double ar_state = 0.0;
  bool burst_active = false;
};

/// Draws a tenant's constants. Consumes exactly the draw sequence the
/// original TenantModel constructor consumed, so pre-refactor streams are
/// reproduced bit-for-bit.
TenantParams DrawTenantParams(const container::Catalog& catalog,
                              const TenantModelOptions& options, Rng& rng);

/// Generates telemetry for interval `t` (call with increasing t; `dyn`
/// carries the AR/burst state). `applied_rung` >= 0 overrides the container
/// the tenant actually runs on (the fault layer's delayed/failed resizes
/// leave it lagging the assigned rung); utilization and waits then follow
/// the applied container while demand and the RNG draw sequence stay
/// exactly as without the override. `demand_scale` multiplies the demand
/// multiplier (flash-crowd injection); 1.0 is bitwise identical to not
/// passing it, and the RNG draw sequence never depends on it.
TenantInterval StepTenant(const container::Catalog& catalog,
                          const TenantModelOptions& options,
                          const TenantParams& params, TenantDynamics& dyn,
                          Rng& rng, int t, int applied_rung = -1,
                          double demand_scale = 1.0);

/// \brief One synthetic tenant (owning wrapper over the shared kernels).
class TenantModel {
 public:
  TenantModel(int tenant_id, const container::Catalog* catalog,
              const TenantModelOptions& options, Rng rng);

  /// See StepTenant.
  TenantInterval Step(int t, int applied_rung = -1,
                      double demand_scale = 1.0);

  int tenant_id() const { return tenant_id_; }
  DemandPattern pattern() const { return params_.pattern; }

 private:
  int tenant_id_;
  const container::Catalog* catalog_;
  TenantModelOptions options_;
  Rng rng_;
  TenantParams params_;
  TenantDynamics dyn_;
};

}  // namespace dbscale::fleet

#endif  // DBSCALE_FLEET_TENANT_MODEL_H_
