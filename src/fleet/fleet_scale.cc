#include "src/fleet/fleet_scale.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/fault/actuator.h"
#include "src/fleet/checkpoint.h"
#include "src/host/actuation.h"
#include "src/host/placement.h"
#include "src/stats/robust.h"

namespace dbscale::fleet {

using container::ResourceKind;

namespace {
constexpr int kIntervalsPerHour = 12;  // 5-minute intervals
constexpr double kIntervalMinutes = 5.0;
/// Claim granularity for the per-tenant init fan-out (the body is a few
/// microseconds, so claiming one tenant per fetch_add would serialize on
/// the atomic).
constexpr int64_t kInitGrain = 1024;
}  // namespace

// ---------------------------------------------------------------------------
// FleetSoaState

void FleetSoaState::Resize(int num_tenants, bool act_enabled,
                           bool host_enabled) {
  const size_t n = static_cast<size_t>(num_tenants);
  rng_state.assign(n, 0);
  rng_inc.assign(n, 0);
  rng_cached_normal.assign(n, 0.0);
  rng_has_cached.assign(n, 0);
  ar_state.assign(n, 0.0);
  burst_active.assign(n, 0);
  prev_rung.assign(n, -1);
  last_change_interval.assign(n, -1);
  changes.assign(n, 0);
  tenant_digest.assign(n, Fnv64Stream{}.value);
  const size_t nf = act_enabled ? n : 0;
  applied_rung.assign(nf, -1);
  plan_rng_state.assign(nf, 0);
  plan_rng_inc.assign(nf, 0);
  plan_rng_cached_normal.assign(nf, 0.0);
  plan_rng_has_cached.assign(nf, 0);
  act_pending.assign(nf, 0);
  act_target_rung.assign(nf, -1);
  act_fate.assign(nf, 0);
  act_remaining.assign(nf, 0);
  act_attempt.assign(nf, 0);
  act_last_target.assign(nf, -1);
  const size_t nh = host_enabled ? n : 0;
  host_of.assign(nh, -1);
  act_kind.assign(nh, 0);
  act_dest.assign(nh, -1);
  prev_demand_cpu.assign(nh, 0.0);
  params.assign(n, TenantParams{});
}

Rng::State FleetSoaState::ModelRngAt(size_t i) const {
  Rng::State s;
  s.state = rng_state[i];
  s.inc = rng_inc[i];
  s.has_cached_normal = rng_has_cached[i] != 0;
  s.cached_normal = rng_cached_normal[i];
  return s;
}

void FleetSoaState::SetModelRngAt(size_t i, const Rng::State& s) {
  rng_state[i] = s.state;
  rng_inc[i] = s.inc;
  rng_has_cached[i] = s.has_cached_normal ? 1 : 0;
  rng_cached_normal[i] = s.cached_normal;
}

Rng::State FleetSoaState::PlanRngAt(size_t i) const {
  Rng::State s;
  s.state = plan_rng_state[i];
  s.inc = plan_rng_inc[i];
  s.has_cached_normal = plan_rng_has_cached[i] != 0;
  s.cached_normal = plan_rng_cached_normal[i];
  return s;
}

void FleetSoaState::SetPlanRngAt(size_t i, const Rng::State& s) {
  plan_rng_state[i] = s.state;
  plan_rng_inc[i] = s.inc;
  plan_rng_has_cached[i] = s.has_cached_normal ? 1 : 0;
  plan_rng_cached_normal[i] = s.cached_normal;
}

namespace {
template <typename T>
uint64_t VecBytes(const std::vector<T>& v) {
  return static_cast<uint64_t>(v.capacity()) * sizeof(T);
}
}  // namespace

uint64_t FleetSoaState::HotBytes() const {
  return VecBytes(rng_state) + VecBytes(rng_inc) +
         VecBytes(rng_cached_normal) + VecBytes(rng_has_cached) +
         VecBytes(ar_state) + VecBytes(burst_active) + VecBytes(prev_rung) +
         VecBytes(last_change_interval) + VecBytes(changes) +
         VecBytes(tenant_digest) +
         VecBytes(applied_rung) + VecBytes(plan_rng_state) +
         VecBytes(plan_rng_inc) + VecBytes(plan_rng_cached_normal) +
         VecBytes(plan_rng_has_cached) + VecBytes(act_pending) +
         VecBytes(act_target_rung) + VecBytes(act_fate) +
         VecBytes(act_remaining) + VecBytes(act_attempt) +
         VecBytes(act_last_target) + VecBytes(host_of) +
         VecBytes(act_kind) + VecBytes(act_dest) +
         VecBytes(prev_demand_cpu);
}

uint64_t FleetSoaState::TotalBytes() const {
  return HotBytes() + VecBytes(params);
}

// ---------------------------------------------------------------------------
// Options

Status FlashCrowdOptions::Validate() const {
  if (!enabled()) return Status::OK();
  if (duration_intervals <= 0) {
    return Status::InvalidArgument(
        "flash_crowd.duration_intervals must be positive");
  }
  if (demand_multiplier <= 0.0) {
    return Status::InvalidArgument(
        "flash_crowd.demand_multiplier must be positive");
  }
  if (num_hosts_hit <= 0) {
    return Status::InvalidArgument("flash_crowd.num_hosts_hit must be >= 1");
  }
  return Status::OK();
}

Status FleetScaleOptions::Validate() const {
  if (num_tenants <= 0 || num_intervals <= 0) {
    return Status::InvalidArgument(
        "num_tenants and num_intervals must be positive");
  }
  if (block_size <= 0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  if (epoch_intervals <= 0 || epoch_intervals % kIntervalsPerHour != 0) {
    return Status::InvalidArgument(
        "epoch_intervals must be a positive multiple of 12 (hour-aligned)");
  }
  if (stop_after_intervals < 0) {
    return Status::InvalidArgument("stop_after_intervals must be >= 0");
  }
  if (checkpoint_every_epochs <= 0) {
    return Status::InvalidArgument("checkpoint_every_epochs must be >= 1");
  }
  DBSCALE_RETURN_IF_ERROR(host.Validate());
  DBSCALE_RETURN_IF_ERROR(flash_crowd.Validate());
  if (flash_crowd.enabled()) {
    if (!host.enabled()) {
      return Status::InvalidArgument(
          "flash_crowd requires the host plane (host.num_hosts > 0)");
    }
    if (flash_crowd.num_hosts_hit > host.num_hosts) {
      return Status::InvalidArgument(
          "flash_crowd.num_hosts_hit exceeds host.num_hosts");
    }
  }
  return fault.Validate();
}

int FleetScaleOptions::NumBlocks() const {
  return (num_tenants + block_size - 1) / block_size;
}

uint64_t FleetScaleFingerprint(const container::Catalog& catalog,
                               const FleetScaleOptions& options) {
  Fnv64Stream h;
  h.Bytes("dbscale.fleet_scale.v1", 22);
  h.I32(catalog.size());
  h.I32(catalog.num_rungs());
  for (const container::ContainerSpec& spec : catalog.specs()) {
    h.Dbl(spec.price_per_interval);
  }
  h.I32(options.num_tenants);
  h.I32(options.num_intervals);
  h.U64(options.seed);
  h.I32(options.block_size);
  h.I32(options.epoch_intervals);
  const TenantModelOptions& t = options.tenant;
  h.Dbl(t.p_steady);
  h.Dbl(t.p_diurnal);
  h.Dbl(t.p_bursty);
  h.Dbl(t.p_spiky);
  h.Dbl(t.p_growth);
  h.Dbl(t.ar_rho);
  h.Dbl(t.ar_sigma);
  h.Dbl(t.ar_sigma_spread);
  h.Dbl(t.wait_noise_sigma);
  h.Dbl(t.storm_probability);
  h.Dbl(t.smooth_fraction);
  h.I32(t.intervals_per_day);
  const fault::FaultPlanOptions& f = options.fault;
  h.U64(f.enabled() ? 1 : 0);
  h.Dbl(f.resize.failure_probability);
  h.Dbl(f.resize.rejection_probability);
  h.I32(f.resize.min_latency_intervals);
  h.I32(f.resize.max_latency_intervals);
  h.Dbl(f.telemetry.drop_probability);
  h.Dbl(f.telemetry.nan_probability);
  h.Dbl(f.telemetry.outlier_probability);
  h.Dbl(f.telemetry.outlier_factor);
  h.Dbl(f.telemetry.stale_probability);
  const host::HostOptions& hst = options.host;
  h.U64(hst.enabled() ? 1 : 0);
  h.I32(hst.num_hosts);
  for (const auto kind : container::kAllResources) {
    h.Dbl(hst.capacity.Get(kind));
  }
  h.Dbl(hst.overcommit_factor);
  h.I32(hst.migration_latency_intervals);
  h.I32(hst.migration_downtime_intervals);
  h.Dbl(hst.migration_downtime_wait_factor);
  h.Dbl(hst.interference_start_ratio);
  h.Dbl(hst.interference_slope);
  h.U64(static_cast<uint64_t>(hst.placement));
  for (const auto kind : container::kAllResources) {
    h.Dbl(hst.background.Get(kind));
  }
  h.I32(hst.hot_hosts);
  for (const auto kind : container::kAllResources) {
    h.Dbl(hst.hot_extra.Get(kind));
  }
  const FlashCrowdOptions& fc = options.flash_crowd;
  h.U64(fc.enabled() ? 1 : 0);
  h.I32(fc.start_interval);
  h.I32(fc.duration_intervals);
  h.Dbl(fc.demand_multiplier);
  h.I32(fc.num_hosts_hit);
  return h.value;
}

// ---------------------------------------------------------------------------
// Runner

// Construction only stores the options; RunFrom() validates them before the
// first interval so Resume() can share the same checked path.
// dbscale-lint: allow(options-validate)
FleetScaleRunner::FleetScaleRunner(const container::Catalog& catalog,
                                   FleetScaleOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      fault_enabled_(options_.fault.enabled()),
      host_enabled_(options_.host.enabled()) {}

Status FleetScaleRunner::InitTenants() {
  state_.Resize(options_.num_tenants, fault_enabled_ || host_enabled_,
                host_enabled_);

  // Phase 1, serial: pre-fork every tenant's generator from the root. The
  // fork order defines each tenant's stream, so it must not depend on
  // scheduling.
  Rng root(options_.seed);
  for (int i = 0; i < options_.num_tenants; ++i) {
    Rng forked = root.Fork();
    state_.SetModelRngAt(static_cast<size_t>(i), forked.SaveState());
  }

  // Phase 2, parallel: per-tenant derivations. Each tenant touches only
  // its own slots, so this is order-free. Draw order within a tenant
  // matches the exact path exactly: the fault stream forks off the tenant
  // generator BEFORE the model draws its constants.
  auto init_tenant = [&](int64_t i) {
    const size_t idx = static_cast<size_t>(i);
    Rng rng = Rng::FromState(state_.ModelRngAt(idx));
    if (fault_enabled_) {
      Rng plan_rng = rng.Fork();
      state_.SetPlanRngAt(idx, plan_rng.SaveState());
    }
    state_.params[idx] = DrawTenantParams(catalog_, options_.tenant, rng);
    state_.SetModelRngAt(idx, rng.SaveState());
  };
  if (options_.num_threads == 0) {
    ThreadPool::Global().ParallelFor(0, options_.num_tenants, init_tenant,
                                     kInitGrain);
  } else {
    ThreadPool pool(options_.num_threads);
    pool.ParallelFor(0, options_.num_tenants, init_tenant, kInitGrain);
  }

  // Host plane: seed-place every tenant's initial container (the cheapest
  // rung dominating its base demand) with first-fit-decreasing, remember
  // which tenants sit on the flash-crowd hosts, and size the per-interval
  // scratch. All serial and derived purely from the seed, so Resume()
  // reproduces it exactly.
  if (host_enabled_) {
    const size_t n = static_cast<size_t>(options_.num_tenants);
    host_map_.emplace(options_.host);
    placement_ = host::MakePlacementPolicy(options_.host.placement);
    std::vector<container::ContainerSpec> initial(n);
    for (size_t i = 0; i < n; ++i) {
      initial[i] = catalog_.CheapestDominating(state_.params[i].base_demand);
    }
    DBSCALE_ASSIGN_OR_RETURN(std::vector<int> placed,
                             host_map_->SeedPlace(initial));
    flash_affected_.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
      state_.host_of[i] = placed[i];
      state_.applied_rung[i] = initial[i].base_rung;
      if (options_.flash_crowd.enabled() &&
          placed[i] < options_.flash_crowd.num_hosts_hit) {
        flash_affected_[i] = 1;
      }
    }
    host_demand_.assign(static_cast<size_t>(options_.host.num_hosts), 0.0);
    tenant_throttle_.assign(n, 1.0);
    assigned_scratch_.assign(n, -1);
    hour_scratch_.assign(
        n * static_cast<size_t>(container::kNumResources) * 4 *
            static_cast<size_t>(kIntervalsPerHour),
        0.0);
  }

  block_aggs_.assign(static_cast<size_t>(options_.NumBlocks()),
                     FleetAggregate{});
  for (FleetAggregate& agg : block_aggs_) {
    agg.Init(catalog_.num_rungs(), options_.num_intervals);
  }
  completed_intervals_ = 0;
  return Status::OK();
}

void FleetScaleRunner::RunBlockEpoch(int block, int t0, int t1,
                                     obs::MetricShard* shard) {
  const int begin =
      block * options_.block_size;
  const int end = std::min(begin + options_.block_size, options_.num_tenants);
  FleetAggregate& agg = block_aggs_[static_cast<size_t>(block)];
  obs::MetricSink sink{shard};
  const obs::PipelineMetrics* pm =
      shard != nullptr ? &options_.obs->pipeline() : nullptr;

  // Hour scratch, reused across the block's tenants (epochs are
  // hour-aligned, so the buffers are empty at every tenant boundary).
  std::array<std::vector<double>, container::kNumResources> hour_util;
  std::array<std::vector<double>, container::kNumResources> hour_wait;
  std::array<std::vector<double>, container::kNumResources> hour_pct;
  std::array<std::vector<double>, container::kNumResources> hour_wpr;
  for (int ri = 0; ri < container::kNumResources; ++ri) {
    const size_t r = static_cast<size_t>(ri);
    hour_util[r].reserve(kIntervalsPerHour);
    hour_wait[r].reserve(kIntervalsPerHour);
    hour_pct[r].reserve(kIntervalsPerHour);
    hour_wpr[r].reserve(kIntervalsPerHour);
  }

  for (int tenant = begin; tenant < end; ++tenant) {
    const size_t idx = static_cast<size_t>(tenant);
    Rng rng = Rng::FromState(state_.ModelRngAt(idx));
    fault::FaultPlan plan;
    if (fault_enabled_) {
      plan = fault::FaultPlan(options_.fault,
                              Rng::FromState(state_.PlanRngAt(idx)));
    }
    fault::ResizeActuator actuator(&plan);
    int applied_rung = -1;
    if (fault_enabled_) {
      fault::ResizeActuator::State act;
      act.pending = state_.act_pending[idx] != 0;
      act.target_rung = state_.act_target_rung[idx];
      act.fate = static_cast<fault::ResizeFate>(state_.act_fate[idx]);
      act.remaining_intervals = state_.act_remaining[idx];
      act.attempt = state_.act_attempt[idx];
      act.last_target_id = state_.act_last_target[idx];
      actuator.RestoreState(act, catalog_);
      applied_rung = state_.applied_rung[idx];
    }
    const TenantParams& params = state_.params[idx];
    TenantDynamics dyn{state_.ar_state[idx],
                       state_.burst_active[idx] != 0};
    int prev_rung = state_.prev_rung[idx];
    int last_change_interval = state_.last_change_interval[idx];
    int changes = state_.changes[idx];
    Fnv64Stream tenant_hash{state_.tenant_digest[idx]};

    if (t0 == 0 && pm != nullptr) sink.Add(pm->fleet_tenants_total, 1.0);

    // The per-interval body mirrors FleetSimulator::SimulateTenant
    // emission-for-emission; it only folds each record into `agg` instead
    // of materializing it.
    for (int t = t0; t < t1; ++t) {
      if (fault_enabled_ && actuator.pending()) {
        const fault::ResizeEvent ev = actuator.Tick();
        if (ev.kind == fault::ResizeEventKind::kApplied) {
          applied_rung = ev.target.base_rung;
        } else if (ev.kind == fault::ResizeEventKind::kFailed) {
          ++agg.resize_failures;
          if (pm != nullptr) sink.Add(pm->fleet_resize_failures_total, 1.0);
        }
      }

      const TenantInterval interval =
          StepTenant(catalog_, options_.tenant, params, dyn, rng, t,
                     fault_enabled_ ? applied_rung : -1);

      if (fault_enabled_) {
        if (applied_rung < 0) {
          applied_rung = interval.assigned_rung;
        } else if (!actuator.pending() &&
                   interval.assigned_rung != applied_rung) {
          const fault::ResizeEvent ev =
              actuator.Begin(catalog_.rung(interval.assigned_rung));
          if (ev.attempt > 1) {
            ++agg.resize_retries;
            if (pm != nullptr) sink.Add(pm->fleet_resize_retries_total, 1.0);
          }
          if (ev.kind == fault::ResizeEventKind::kApplied) {
            applied_rung = ev.target.base_rung;
          } else if (ev.kind == fault::ResizeEventKind::kFailed ||
                     ev.kind == fault::ResizeEventKind::kRejected) {
            ++agg.resize_failures;
            if (pm != nullptr) sink.Add(pm->fleet_resize_failures_total, 1.0);
          }
        }
      }

      const int observed_rung =
          fault_enabled_ ? applied_rung : interval.assigned_rung;

      if (prev_rung >= 0 && observed_rung != prev_rung) {
        ++changes;
        const int step = std::abs(observed_rung - prev_rung);
        const int gap =
            last_change_interval >= 0 ? t - last_change_interval : 0;
        agg.AddChangeEvent(step, gap);
        tenant_hash.I32(step);
        tenant_hash.I32(gap);
        if (pm != nullptr) {
          sink.Add(pm->fleet_container_changes_total, 1.0);
          sink.Observe(pm->fleet_change_step_rungs,
                       static_cast<double>(step));
          if (gap > 0) {
            sink.Observe(pm->fleet_inter_event_minutes,
                         static_cast<double>(gap) * kIntervalMinutes);
          }
        }
        last_change_interval = t;
      }
      prev_rung = observed_rung;
      if (pm != nullptr) sink.Add(pm->fleet_tenant_intervals_total, 1.0);

      for (int ri = 0; ri < container::kNumResources; ++ri) {
        const size_t r = static_cast<size_t>(ri);
        hour_util[r].push_back(interval.utilization_pct[r]);
        hour_wait[r].push_back(interval.wait_ms[r]);
        hour_pct[r].push_back(interval.wait_pct[r]);
        hour_wpr[r].push_back(
            interval.wait_ms[r] /
            static_cast<double>(std::max<int64_t>(1, interval.completed)));
      }
      if ((t + 1) % kIntervalsPerHour == 0) {
        HourlyRecord record;
        record.tenant_id = tenant;
        record.hour = t / kIntervalsPerHour;
        for (int ri = 0; ri < container::kNumResources; ++ri) {
          const size_t r = static_cast<size_t>(ri);
          record.utilization_pct[r] =
              stats::MedianInPlace(hour_util[r]).value_or(0.0);
          record.wait_ms[r] =
              stats::MedianInPlace(hour_wait[r]).value_or(0.0);
          record.wait_pct[r] =
              stats::MedianInPlace(hour_pct[r]).value_or(0.0);
          record.wait_ms_per_request[r] =
              stats::MedianInPlace(hour_wpr[r]).value_or(0.0);
          hour_util[r].clear();
          hour_wait[r].clear();
          hour_pct[r].clear();
          hour_wpr[r].clear();
          tenant_hash.Dbl(record.utilization_pct[r]);
          tenant_hash.Dbl(record.wait_ms[r]);
          tenant_hash.Dbl(record.wait_pct[r]);
          tenant_hash.Dbl(record.wait_ms_per_request[r]);
        }
        agg.AddHourlyRecord(record);
        if (pm != nullptr) sink.Add(pm->fleet_hourly_records_total, 1.0);
      }
    }

    // Trailing sub-hour samples (num_intervals not a multiple of 12) are
    // dropped, exactly as the exact path drops them.
    for (int ri = 0; ri < container::kNumResources; ++ri) {
      const size_t r = static_cast<size_t>(ri);
      hour_util[r].clear();
      hour_wait[r].clear();
      hour_pct[r].clear();
      hour_wpr[r].clear();
    }

    if (t1 == options_.num_intervals) {
      agg.AddTenantChanges(changes);
      tenant_hash.I32(changes);
      agg.ChainDigest(tenant_hash.value);
    }
    state_.tenant_digest[idx] = tenant_hash.value;

    state_.SetModelRngAt(idx, rng.SaveState());
    state_.ar_state[idx] = dyn.ar_state;
    state_.burst_active[idx] = dyn.burst_active ? 1 : 0;
    state_.prev_rung[idx] = prev_rung;
    state_.last_change_interval[idx] = last_change_interval;
    state_.changes[idx] = changes;
    if (fault_enabled_) {
      state_.applied_rung[idx] = applied_rung;
      state_.SetPlanRngAt(idx, plan.SaveRngState());
      const fault::ResizeActuator::State act = actuator.SaveState();
      state_.act_pending[idx] = act.pending ? 1 : 0;
      state_.act_target_rung[idx] = act.target_rung;
      state_.act_fate[idx] = static_cast<uint8_t>(act.fate);
      state_.act_remaining[idx] = act.remaining_intervals;
      state_.act_attempt[idx] = act.attempt;
      state_.act_last_target[idx] = act.last_target_id;
    }
  }
}

// ---------------------------------------------------------------------------
// Host-mode interval-major phases. Hosts couple co-located tenants (the
// interference throttle at interval t depends on every resident's demand at
// t-1, and a migration moves capacity between hosts mid-run), so host mode
// cannot run blocks whole epochs apart. Instead each interval runs three
// phases: A (serial, tenant order) tick in-flight actuations and refresh
// throttles; B (parallel over blocks) step tenants; C (serial, tenant
// order) begin new actuations. Everything order-sensitive happens in the
// serial phases, so the digest is bit-identical at any thread count.

void FleetScaleRunner::HostTickActuations(int t) {
  (void)t;
  const int n = options_.num_tenants;
  const int D = options_.host.migration_downtime_intervals;
  const double downtime_factor = options_.host.migration_downtime_wait_factor;
  // Tick never draws from the fault plan (fates are drawn at Begin), so a
  // shared null plan suffices for restoring the actuator per tenant.
  fault::FaultPlan null_plan;
  fault::ResizeActuator actuator(&null_plan);
  const obs::PipelineMetrics* pm =
      options_.obs != nullptr ? &options_.obs->pipeline() : nullptr;

  for (int i = 0; i < n; ++i) {
    const size_t idx = static_cast<size_t>(i);
    tenant_throttle_[idx] = 1.0;
    if (state_.act_pending[idx] == 0) continue;

    fault::ResizeActuator::State act;
    act.pending = true;
    act.target_rung = state_.act_target_rung[idx];
    act.fate = static_cast<fault::ResizeFate>(state_.act_fate[idx]);
    act.remaining_intervals = state_.act_remaining[idx];
    act.attempt = state_.act_attempt[idx];
    act.last_target_id = state_.act_last_target[idx];
    actuator.RestoreState(act, catalog_);

    const bool migration = state_.act_kind[idx] != 0;
    const fault::ResizeEvent ev = actuator.Tick();
    FleetAggregate& agg =
        block_aggs_[static_cast<size_t>(i / options_.block_size)];
    obs::MetricShard* shard =
        shard_pool_.attached()
            ? &shard_pool_.shard(static_cast<size_t>(i / options_.block_size))
            : nullptr;
    obs::MetricSink sink{shard};

    if (ev.kind == fault::ResizeEventKind::kApplied) {
      const container::ResourceVector old_bundle =
          catalog_.rung(state_.applied_rung[idx]).resources;
      const container::ResourceVector& new_bundle = ev.target.resources;
      if (migration) {
        host_map_->CompleteMigration(state_.host_of[idx],
                                     state_.act_dest[idx], old_bundle,
                                     new_bundle);
        state_.host_of[idx] = state_.act_dest[idx];
        if (pm != nullptr && shard != nullptr) {
          sink.Add(pm->host_migrations_total, 1.0);
        }
      } else {
        host_map_->CommitLocal(state_.host_of[idx],
                               host::UpDelta(old_bundle, new_bundle),
                               old_bundle, new_bundle);
      }
      state_.applied_rung[idx] = ev.target.base_rung;
      state_.act_kind[idx] = 0;
      state_.act_dest[idx] = -1;
    } else if (ev.kind == fault::ResizeEventKind::kFailed) {
      // A failed migration is revealed at cutover: the destination
      // reservation is released and the tenant stays where it was (having
      // already suffered the blackout). A failed local resize releases its
      // up-delta reservation.
      const container::ResourceVector old_bundle =
          catalog_.rung(state_.applied_rung[idx]).resources;
      if (migration) {
        host_map_->AbortMigration(state_.act_dest[idx], ev.target.resources);
        if (pm != nullptr && shard != nullptr) {
          sink.Add(pm->host_migration_failures_total, 1.0);
        }
      } else {
        host_map_->AbortLocal(state_.host_of[idx],
                              host::UpDelta(old_bundle, ev.target.resources));
      }
      ++agg.resize_failures;
      if (pm != nullptr && shard != nullptr) {
        sink.Add(pm->fleet_resize_failures_total, 1.0);
      }
      state_.act_kind[idx] = 0;
      state_.act_dest[idx] = -1;
    }

    const fault::ResizeActuator::State saved = actuator.SaveState();
    state_.act_pending[idx] = saved.pending ? 1 : 0;
    state_.act_target_rung[idx] = saved.target_rung;
    state_.act_fate[idx] = static_cast<uint8_t>(saved.fate);
    state_.act_remaining[idx] = saved.remaining_intervals;
    state_.act_attempt[idx] = saved.attempt;
    state_.act_last_target[idx] = saved.last_target_id;

    // Migration blackout: the last D pending intervals before cutover. The
    // tenant's own waits are inflated and the downtime is billed.
    if (saved.pending && migration && D > 0 &&
        saved.remaining_intervals <= D) {
      host_map_->AddDowntimeInterval();
      tenant_throttle_[idx] *= downtime_factor;
      if (pm != nullptr && shard != nullptr) {
        sink.Add(pm->host_migration_downtime_intervals_total, 1.0);
      }
    }
  }

  // Interference: fold the previous interval's resident CPU demand
  // (clamped per tenant to its applied container — a tenant cannot burn
  // more CPU than its container grants) into per-host pressure, then give
  // every tenant its host's throttle.
  std::fill(host_demand_.begin(), host_demand_.end(), 0.0);
  for (int i = 0; i < n; ++i) {
    const size_t idx = static_cast<size_t>(i);
    const double cap =
        catalog_.rung(state_.applied_rung[idx]).resources.cpu_cores;
    host_demand_[static_cast<size_t>(state_.host_of[idx])] +=
        std::min(state_.prev_demand_cpu[idx], cap);
  }
  host_map_->UpdateInterference(host_demand_);
  for (int i = 0; i < n; ++i) {
    const size_t idx = static_cast<size_t>(i);
    tenant_throttle_[idx] *=
        host_map_->throttle(state_.host_of[idx]);
  }
}

void FleetScaleRunner::HostStepBlock(int block, int t,
                                     obs::MetricShard* shard) {
  const int begin = block * options_.block_size;
  const int end = std::min(begin + options_.block_size, options_.num_tenants);
  FleetAggregate& agg = block_aggs_[static_cast<size_t>(block)];
  obs::MetricSink sink{shard};
  const obs::PipelineMetrics* pm =
      shard != nullptr ? &options_.obs->pipeline() : nullptr;
  const FlashCrowdOptions& fc = options_.flash_crowd;
  const bool crowd_now = fc.enabled() && t >= fc.start_interval &&
                         t < fc.start_interval + fc.duration_intervals;
  constexpr size_t kSeries = 4;  // util, wait_ms, wait_pct, wait_per_req
  const size_t tenant_stride = static_cast<size_t>(container::kNumResources) *
                               kSeries *
                               static_cast<size_t>(kIntervalsPerHour);
  std::vector<double> median_scratch;
  median_scratch.reserve(static_cast<size_t>(kIntervalsPerHour));

  for (int tenant = begin; tenant < end; ++tenant) {
    const size_t idx = static_cast<size_t>(tenant);
    Rng rng = Rng::FromState(state_.ModelRngAt(idx));
    const TenantParams& params = state_.params[idx];
    TenantDynamics dyn{state_.ar_state[idx], state_.burst_active[idx] != 0};

    if (t == 0 && pm != nullptr) sink.Add(pm->fleet_tenants_total, 1.0);

    const double demand_scale =
        (crowd_now && flash_affected_[idx] != 0) ? fc.demand_multiplier : 1.0;
    TenantInterval interval =
        StepTenant(catalog_, options_.tenant, params, dyn, rng, t,
                   state_.applied_rung[idx], demand_scale);
    assigned_scratch_[idx] = interval.assigned_rung;
    state_.prev_demand_cpu[idx] = interval.demand.cpu_cores;

    // Noisy-neighbor + blackout inflation. A uniform factor across
    // dimensions leaves the wait shares (wait_pct) untouched.
    const double throttle = tenant_throttle_[idx];
    // Exact-1.0 guard (not an epsilon test): skipping the multiply when no
    // inflation applies keeps unthrottled streams bit-identical.
    if (throttle != 1.0) {  // dbscale-lint: allow(float-equality)
      for (int ri = 0; ri < container::kNumResources; ++ri) {
        interval.wait_ms[static_cast<size_t>(ri)] *= throttle;
      }
    }

    const int observed_rung = state_.applied_rung[idx];
    int prev_rung = state_.prev_rung[idx];
    int last_change_interval = state_.last_change_interval[idx];
    int changes = state_.changes[idx];
    Fnv64Stream tenant_hash{state_.tenant_digest[idx]};

    if (prev_rung >= 0 && observed_rung != prev_rung) {
      ++changes;
      const int step = std::abs(observed_rung - prev_rung);
      const int gap = last_change_interval >= 0 ? t - last_change_interval : 0;
      agg.AddChangeEvent(step, gap);
      tenant_hash.I32(step);
      tenant_hash.I32(gap);
      if (pm != nullptr) {
        sink.Add(pm->fleet_container_changes_total, 1.0);
        sink.Observe(pm->fleet_change_step_rungs, static_cast<double>(step));
        if (gap > 0) {
          sink.Observe(pm->fleet_inter_event_minutes,
                       static_cast<double>(gap) * kIntervalMinutes);
        }
      }
      last_change_interval = t;
    }
    prev_rung = observed_rung;
    if (pm != nullptr) sink.Add(pm->fleet_tenant_intervals_total, 1.0);

    // Persistent per-tenant hour buffers: interval-major execution visits
    // a tenant once per interval, so the hour's 12 samples accumulate in
    // the flat scratch and flush on the hour boundary exactly as the
    // block-major path's local buffers do.
    double* hour = hour_scratch_.data() + idx * tenant_stride;
    const size_t slot = static_cast<size_t>(t % kIntervalsPerHour);
    for (int ri = 0; ri < container::kNumResources; ++ri) {
      const size_t r = static_cast<size_t>(ri);
      double* series = hour + r * kSeries * kIntervalsPerHour;
      series[0 * kIntervalsPerHour + slot] = interval.utilization_pct[r];
      series[1 * kIntervalsPerHour + slot] = interval.wait_ms[r];
      series[2 * kIntervalsPerHour + slot] = interval.wait_pct[r];
      series[3 * kIntervalsPerHour + slot] =
          interval.wait_ms[r] /
          static_cast<double>(std::max<int64_t>(1, interval.completed));
    }
    if ((t + 1) % kIntervalsPerHour == 0) {
      HourlyRecord record;
      record.tenant_id = tenant;
      record.hour = t / kIntervalsPerHour;
      for (int ri = 0; ri < container::kNumResources; ++ri) {
        const size_t r = static_cast<size_t>(ri);
        double* series = hour + r * kSeries * kIntervalsPerHour;
        auto median_of = [&](size_t s) {
          median_scratch.assign(series + s * kIntervalsPerHour,
                                series + (s + 1) * kIntervalsPerHour);
          return stats::MedianInPlace(median_scratch).value_or(0.0);
        };
        record.utilization_pct[r] = median_of(0);
        record.wait_ms[r] = median_of(1);
        record.wait_pct[r] = median_of(2);
        record.wait_ms_per_request[r] = median_of(3);
        tenant_hash.Dbl(record.utilization_pct[r]);
        tenant_hash.Dbl(record.wait_ms[r]);
        tenant_hash.Dbl(record.wait_pct[r]);
        tenant_hash.Dbl(record.wait_ms_per_request[r]);
      }
      agg.AddHourlyRecord(record);
      if (pm != nullptr) sink.Add(pm->fleet_hourly_records_total, 1.0);
    }

    if (t + 1 == options_.num_intervals) {
      agg.AddTenantChanges(changes);
      tenant_hash.I32(changes);
      agg.ChainDigest(tenant_hash.value);
    }
    state_.tenant_digest[idx] = tenant_hash.value;
    state_.SetModelRngAt(idx, rng.SaveState());
    state_.ar_state[idx] = dyn.ar_state;
    state_.burst_active[idx] = dyn.burst_active ? 1 : 0;
    state_.prev_rung[idx] = prev_rung;
    state_.last_change_interval[idx] = last_change_interval;
    state_.changes[idx] = changes;
  }
}

void FleetScaleRunner::HostBeginActuations(int t) {
  (void)t;
  const int n = options_.num_tenants;
  const int migration_latency = options_.host.migration_latency_intervals +
                                options_.host.migration_downtime_intervals;
  const obs::PipelineMetrics* pm =
      options_.obs != nullptr ? &options_.obs->pipeline() : nullptr;

  for (int i = 0; i < n; ++i) {
    const size_t idx = static_cast<size_t>(i);
    if (state_.act_pending[idx] != 0) continue;
    const int assigned = assigned_scratch_[idx];
    if (assigned < 0 || assigned == state_.applied_rung[idx]) continue;

    const container::ContainerSpec& target = catalog_.rung(assigned);
    const container::ResourceVector old_bundle =
        catalog_.rung(state_.applied_rung[idx]).resources;
    const container::ResourceVector up_delta =
        host::UpDelta(old_bundle, target.resources);

    FleetAggregate& agg =
        block_aggs_[static_cast<size_t>(i / options_.block_size)];
    obs::MetricShard* shard =
        shard_pool_.attached()
            ? &shard_pool_.shard(static_cast<size_t>(i / options_.block_size))
            : nullptr;
    obs::MetricSink sink{shard};

    // Placement decision: a scale-up that does not fit next to the host's
    // current allocation + reservations must migrate; scale-downs always
    // fit (their up-delta is zero).
    const bool migrate = !host_map_->FitsOn(state_.host_of[idx], up_delta);
    int dest = -1;
    if (migrate) {
      dest = placement_->ChooseHost(*host_map_, target.resources,
                                    state_.host_of[idx]);
      if (dest < 0) {
        // No host in the fleet has room: hold the scale-up without
        // consuming a fault draw, so the tenant retries next interval with
        // an unchanged fault stream.
        host_map_->AddPlacementHold();
        if (pm != nullptr && shard != nullptr) {
          sink.Add(pm->host_placement_holds_total, 1.0);
        }
        continue;
      }
    }

    fault::FaultPlan plan;
    if (fault_enabled_) {
      plan = fault::FaultPlan(options_.fault,
                              Rng::FromState(state_.PlanRngAt(idx)));
    }
    fault::ResizeActuator actuator(&plan);
    fault::ResizeActuator::State act;
    act.pending = false;
    act.target_rung = state_.act_target_rung[idx];
    act.fate = static_cast<fault::ResizeFate>(state_.act_fate[idx]);
    act.remaining_intervals = state_.act_remaining[idx];
    act.attempt = state_.act_attempt[idx];
    act.last_target_id = state_.act_last_target[idx];
    actuator.RestoreState(act, catalog_);

    const fault::ResizeEvent ev =
        actuator.Begin(target, migrate ? migration_latency : 0);
    if (ev.attempt > 1) {
      ++agg.resize_retries;
      if (pm != nullptr && shard != nullptr) {
        sink.Add(pm->fleet_resize_retries_total, 1.0);
      }
    }
    if (ev.kind == fault::ResizeEventKind::kRejected) {
      // Control-plane rejection before any host accounting was touched.
      ++agg.resize_failures;
      if (pm != nullptr && shard != nullptr) {
        sink.Add(pm->fleet_resize_failures_total, 1.0);
      }
    } else if (migrate) {
      // extra latency >= 1 forces kPending: a migration can never apply or
      // fail in its Begin interval.
      host_map_->BeginMigration(dest, target.resources);
      state_.act_kind[idx] = 1;
      state_.act_dest[idx] = dest;
      if (pm != nullptr && shard != nullptr) {
        sink.Add(pm->host_migrations_begun_total, 1.0);
      }
    } else {
      state_.act_kind[idx] = 0;
      state_.act_dest[idx] = -1;
      if (ev.kind == fault::ResizeEventKind::kApplied) {
        // Zero-latency local resize: applied within the interval.
        host_map_->CommitLocal(state_.host_of[idx], up_delta, old_bundle,
                               target.resources);
        state_.applied_rung[idx] = target.base_rung;
      } else if (ev.kind == fault::ResizeEventKind::kFailed) {
        ++agg.resize_failures;
        if (pm != nullptr && shard != nullptr) {
          sink.Add(pm->fleet_resize_failures_total, 1.0);
        }
      } else {
        // Pending local resize: reserve its up-delta until it resolves.
        host_map_->ReserveLocal(state_.host_of[idx], up_delta);
      }
    }

    const fault::ResizeActuator::State saved = actuator.SaveState();
    state_.act_pending[idx] = saved.pending ? 1 : 0;
    state_.act_target_rung[idx] = saved.target_rung;
    state_.act_fate[idx] = static_cast<uint8_t>(saved.fate);
    state_.act_remaining[idx] = saved.remaining_intervals;
    state_.act_attempt[idx] = saved.attempt;
    state_.act_last_target[idx] = saved.last_target_id;
    if (fault_enabled_) state_.SetPlanRngAt(idx, plan.SaveRngState());
  }
}

Result<FleetScaleOutcome> FleetScaleRunner::RunFrom(int start_interval) {
  const int total = options_.num_intervals;
  const int num_blocks = options_.NumBlocks();

  // Observability setup: register + size the primary before the fan-out,
  // one pooled shard per block.
  if (options_.obs != nullptr) {
    options_.obs->AttachPrimary();
    shard_pool_.Attach(&options_.obs->registry(),
                       static_cast<size_t>(num_blocks));
  }

  // The stop point: the first epoch boundary at or past the request.
  int stop = total;
  if (options_.stop_after_intervals > 0 &&
      options_.stop_after_intervals < total) {
    const int epochs = (options_.stop_after_intervals +
                        options_.epoch_intervals - 1) /
                       options_.epoch_intervals;
    stop = std::min(total, epochs * options_.epoch_intervals);
  }

  const uint64_t fingerprint = FleetScaleFingerprint(catalog_, options_);
  ThreadPool* pool = nullptr;
  ThreadPool local_pool(options_.num_threads == 0 ? 1 : options_.num_threads);
  if (options_.num_threads != 0) pool = &local_pool;

  completed_intervals_ = start_interval;
  int epochs_done = 0;
  while (completed_intervals_ < stop) {
    const int t0 = completed_intervals_;
    const int t1 = std::min(t0 + options_.epoch_intervals, total);
    if (host_enabled_) {
      // Interval-major: serial tick, parallel step, serial begin. Hour
      // buffers live in hour_scratch_ and are empty at every epoch
      // boundary (epochs are hour-aligned), so they need no checkpointing.
      for (int t = t0; t < t1; ++t) {
        HostTickActuations(t);
        auto step_block = [&](int64_t block) {
          obs::MetricShard* shard =
              shard_pool_.attached()
                  ? &shard_pool_.shard(static_cast<size_t>(block))
                  : nullptr;
          HostStepBlock(static_cast<int>(block), t, shard);
        };
        if (pool != nullptr) {
          pool->ParallelFor(0, num_blocks, step_block);
        } else {
          ThreadPool::Global().ParallelFor(0, num_blocks, step_block);
        }
        HostBeginActuations(t);
      }
    } else {
      auto run_block = [&](int64_t block) {
        obs::MetricShard* shard =
            shard_pool_.attached()
                ? &shard_pool_.shard(static_cast<size_t>(block))
                : nullptr;
        RunBlockEpoch(static_cast<int>(block), t0, t1, shard);
      };
      if (pool != nullptr) {
        pool->ParallelFor(0, num_blocks, run_block);
      } else {
        ThreadPool::Global().ParallelFor(0, num_blocks, run_block);
      }
    }
    completed_intervals_ = t1;
    ++epochs_done;

    const bool at_stop = completed_intervals_ >= stop;
    if (!options_.checkpoint_path.empty() &&
        (at_stop || epochs_done % options_.checkpoint_every_epochs == 0)) {
      DBSCALE_RETURN_IF_ERROR(SaveFleetCheckpoint(
          options_.checkpoint_path, fingerprint, completed_intervals_,
          state_, block_aggs_, host_map_ ? &*host_map_ : nullptr));
    }
  }

  // Merge per-block results in block order: bit-identical at any thread
  // count and across checkpoint/resume. The host digest (when the plane
  // ran) chains in before any block: host-then-tenant order.
  FleetScaleOutcome outcome;
  outcome.completed_intervals = completed_intervals_;
  outcome.complete = completed_intervals_ == total;
  outcome.aggregate.Init(catalog_.num_rungs(), total);
  if (host_enabled_) {
    outcome.host = host_map_->counters();
    outcome.host_digest = host_map_->Digest();
    outcome.aggregate.ChainDigest(outcome.host_digest);
  }
  for (const FleetAggregate& agg : block_aggs_) {
    outcome.aggregate.MergeFrom(agg);
  }
  if (options_.obs != nullptr) {
    if (host_enabled_) {
      // Fleet-level host counters that have no per-interval recording
      // site: saturated-host intervals accumulate inside the map.
      obs::MetricSink primary{&options_.obs->primary()};
      primary.Add(options_.obs->pipeline().host_saturated_host_intervals_total,
                  static_cast<double>(
                      host_map_->counters().saturated_host_intervals));
    }
    shard_pool_.MergeInto(&options_.obs->primary());
  }
  return outcome;
}

Result<FleetScaleOutcome> FleetScaleRunner::Run() {
  DBSCALE_RETURN_IF_ERROR(options_.Validate());
  DBSCALE_RETURN_IF_ERROR(InitTenants());
  return RunFrom(0);
}

Result<FleetScaleOutcome> FleetScaleRunner::Resume(
    const container::Catalog& catalog, FleetScaleOptions options,
    const std::string& checkpoint_path) {
  FleetScaleRunner runner(catalog, std::move(options));
  DBSCALE_RETURN_IF_ERROR(runner.options_.Validate());

  const uint64_t fingerprint =
      FleetScaleFingerprint(catalog, runner.options_);
  DBSCALE_ASSIGN_OR_RETURN(
      FleetCheckpointData data,
      LoadFleetCheckpoint(checkpoint_path, fingerprint));

  if (data.state.num_tenants() != runner.options_.num_tenants ||
      data.state.fault_sized() !=
          (runner.fault_enabled_ || runner.host_enabled_) ||
      data.state.host_sized() != runner.host_enabled_ ||
      static_cast<int>(data.block_aggs.size()) !=
          runner.options_.NumBlocks() ||
      data.completed_intervals > runner.options_.num_intervals) {
    return Status::FailedPrecondition(
        "checkpoint shape does not match the run options");
  }
  if (runner.host_enabled_ &&
      static_cast<int>(data.hosts.size()) != runner.options_.host.num_hosts) {
    return Status::FailedPrecondition(
        "checkpoint host count does not match the run options");
  }
  if (data.completed_intervals % runner.options_.epoch_intervals != 0 &&
      data.completed_intervals != runner.options_.num_intervals) {
    return Status::FailedPrecondition(
        "checkpoint interval count is not epoch-aligned");
  }

  // Rebuild the derived per-tenant constants from the seed, then lay the
  // checkpointed hot state over them. InitTenants also re-runs the seed
  // placement (deterministic from the seed), which rebuilds the host map
  // and the flash-crowd membership; the checkpointed per-host accounting
  // then overwrites the seed-time accounting.
  DBSCALE_RETURN_IF_ERROR(runner.InitTenants());
  std::vector<TenantParams> params = std::move(runner.state_.params);
  runner.state_ = std::move(data.state);
  runner.state_.params = std::move(params);
  runner.block_aggs_ = std::move(data.block_aggs);
  if (runner.host_enabled_) {
    for (int id = 0; id < runner.options_.host.num_hosts; ++id) {
      runner.host_map_->RestoreHost(id, data.hosts[static_cast<size_t>(id)]);
    }
    runner.host_map_->RestoreCounters(data.host_counters);
  }
  return runner.RunFrom(data.completed_intervals);
}

}  // namespace dbscale::fleet
