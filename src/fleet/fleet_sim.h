// Fleet simulator: service-wide telemetry over thousands of tenants.
//
// Produces (a) hourly-aggregated wait/utilization records (the paper
// aggregates 5-minute wait samples to hourly medians for Figures 4 and 6
// and for threshold calibration), and (b) container-change statistics
// (Figure 2 and the step-size analysis of Section 4).

#ifndef DBSCALE_FLEET_FLEET_SIM_H_
#define DBSCALE_FLEET_FLEET_SIM_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/fault/actuator.h"
#include "src/fault/fault_plan.h"
#include "src/fleet/tenant_model.h"
#include "src/obs/pipeline.h"

namespace dbscale::fleet {

/// Hourly-median telemetry for one tenant-hour.
struct HourlyRecord {
  int tenant_id = 0;
  int hour = 0;
  /// Median of the hour's 5-minute samples.
  std::array<double, container::kNumResources> utilization_pct{};
  std::array<double, container::kNumResources> wait_ms{};
  std::array<double, container::kNumResources> wait_pct{};
  /// Median wait per completed request (ms/request).
  std::array<double, container::kNumResources> wait_ms_per_request{};
};

/// Per-tenant container-change statistics.
struct TenantChangeStats {
  int tenant_id = 0;
  int num_changes = 0;
  double changes_per_day = 0.0;
};

/// Aggregated fleet output.
struct FleetTelemetry {
  std::vector<HourlyRecord> hourly;
  /// Minutes between successive container-change events, pooled across
  /// tenants (Figure 2(a)).
  std::vector<double> inter_event_minutes;
  std::vector<TenantChangeStats> tenant_changes;
  /// Distribution of |rung step| per change event (index 1..; index 0
  /// unused).
  std::vector<int64_t> step_size_counts;
  int num_tenants = 0;
  int num_intervals = 0;
  /// Resize-fault totals (zero with a null fault plan). Failures include
  /// permanent rejections; retries are repeat attempts toward one target.
  uint64_t resize_failures = 0;
  uint64_t resize_retries = 0;

  /// Fraction of change events with |step| == 1 / <= 2 (Section 4: ~90% /
  /// ~98%).
  double OneStepFraction() const;
  double AtMostTwoStepFraction() const;
};

struct FleetOptions {
  int num_tenants = 2000;
  /// 5-minute intervals to simulate (default one week).
  int num_intervals = 7 * 288;
  uint64_t seed = 7;
  /// Worker threads for the tenant fan-out. 0 = the process default
  /// (DBSCALE_NUM_THREADS env var, else hardware concurrency); 1 = serial.
  int num_threads = 0;
  TenantModelOptions tenant;
  /// Deterministic fault injection. Each tenant's fault stream forks off
  /// its pre-forked tenant RNG, so faulty runs stay bit-identical at any
  /// thread count; the default (disabled) plan draws nothing and leaves
  /// the run bit-identical to a build without the fault layer.
  fault::FaultPlanOptions fault;
  /// Observability bundle (not owned; nullptr = off). Tenants record into
  /// a pooled MetricShard per scheduling block (obs::ShardPool) rather
  /// than one shard each; shards are merged into the primary in block
  /// order. Fleet metrics are integer-valued counter/histogram adds, so
  /// block pooling is bitwise identical to the historical per-tenant
  /// shards at any thread count. The fleet records metrics only (no
  /// per-interval traces).
  obs::Observability* obs = nullptr;
  /// Tenants per scheduling block (also the metric-shard granularity).
  int block_size = 256;
};

/// \brief Runs the closed-form fleet model.
class FleetSimulator {
 public:
  FleetSimulator(const container::Catalog& catalog, FleetOptions options);

  /// Simulates all tenants, fanning out across threads. Deterministic for
  /// a given seed and bit-identical at any thread count: every tenant's RNG
  /// is pre-forked from the root RNG before dispatch and per-tenant outputs
  /// are merged in tenant order.
  Result<FleetTelemetry> Run() const;

 private:
  /// One tenant's contribution, merged into FleetTelemetry in tenant order.
  struct TenantPartial {
    std::vector<HourlyRecord> hourly;
    std::vector<double> inter_event_minutes;
    std::vector<int64_t> step_size_counts;
    TenantChangeStats changes;
    uint64_t resize_failures = 0;
    uint64_t resize_retries = 0;
  };

  /// `sink` targets the tenant's block shard (null when obs is off); safe
  /// because one worker owns a block at a time.
  TenantPartial SimulateTenant(int tenant, Rng rng,
                               obs::MetricSink sink) const;

  container::Catalog catalog_;
  FleetOptions options_;
};

}  // namespace dbscale::fleet

#endif  // DBSCALE_FLEET_FLEET_SIM_H_
