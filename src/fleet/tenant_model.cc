#include "src/fleet/tenant_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace dbscale::fleet {

using container::ResourceKind;
using container::ResourceVector;

const char* DemandPatternToString(DemandPattern p) {
  switch (p) {
    case DemandPattern::kSteady:
      return "steady";
    case DemandPattern::kDiurnal:
      return "diurnal";
    case DemandPattern::kBursty:
      return "bursty";
    case DemandPattern::kSpiky:
      return "spiky";
    case DemandPattern::kGrowth:
      return "growth";
  }
  return "?";
}

TenantParams DrawTenantParams(const container::Catalog& catalog,
                              const TenantModelOptions& options, Rng& rng) {
  TenantParams params;

  const double pick = rng.NextDouble();
  if (pick < options.p_steady) {
    params.pattern = DemandPattern::kSteady;
  } else if (pick < options.p_steady + options.p_diurnal) {
    params.pattern = DemandPattern::kDiurnal;
  } else if (pick <
             options.p_steady + options.p_diurnal + options.p_bursty) {
    params.pattern = DemandPattern::kBursty;
  } else if (pick < options.p_steady + options.p_diurnal +
                        options.p_bursty + options.p_spiky) {
    params.pattern = DemandPattern::kSpiky;
  } else {
    params.pattern = DemandPattern::kGrowth;
  }

  // Base demand: a tenant "size" spanning the catalog (lognormal), with
  // per-resource shape factors so tenants are CPU-heavy, I/O-heavy, etc.
  const ResourceVector largest = catalog.largest().resources;
  const double size_factor =
      std::min(1.0, rng.LogNormal(/*mu=*/-3.0, /*sigma=*/1.2));
  for (ResourceKind kind : container::kAllResources) {
    const double shape = rng.LogNormal(0.0, 0.5);
    params.base_demand.Set(kind, largest.Get(kind) * size_factor * shape);
  }
  params.smooth = rng.Bernoulli(options.smooth_fraction);
  params.ar_sigma =
      options.ar_sigma * rng.LogNormal(0.0, options.ar_sigma_spread);
  params.base_rate_rps = 2.0 + params.base_demand.cpu_cores * 30.0;
  for (ResourceKind kind : container::kAllResources) {
    // Per-resource personality: how wait-prone this tenant's use of the
    // resource is (ms of wait per request at the queueing knee).
    params.wait_scale[static_cast<size_t>(kind)] = rng.LogNormal(2.0, 1.6);
  }
  return params;
}

namespace {

double PatternMultiplier(const TenantModelOptions& options,
                         const TenantParams& params, TenantDynamics& dyn,
                         Rng& rng, int t) {
  const double day_phase =
      2.0 * M_PI * static_cast<double>(t % options.intervals_per_day) /
      static_cast<double>(options.intervals_per_day);
  // AR(1) noise in log space, shared by all patterns.
  dyn.ar_state =
      options.ar_rho * dyn.ar_state + rng.Normal(0.0, params.ar_sigma);
  const double noise = std::exp(dyn.ar_state);

  switch (params.pattern) {
    case DemandPattern::kSteady:
      return noise;
    case DemandPattern::kDiurnal:
      return noise * (0.62 + 0.38 * std::sin(day_phase));
    case DemandPattern::kBursty: {
      // Two-state Markov bursts, mean on-time ~16 intervals (80 min).
      if (dyn.burst_active) {
        if (rng.Bernoulli(1.0 / 16.0)) dyn.burst_active = false;
      } else {
        if (rng.Bernoulli(1.0 / 48.0)) dyn.burst_active = true;
      }
      return noise * (dyn.burst_active ? 1.9 : 0.65);
    }
    case DemandPattern::kSpiky:
      return noise * (rng.Bernoulli(0.02) ? 2.6 : 0.7);
    case DemandPattern::kGrowth: {
      const double week_frac =
          std::min(1.0, static_cast<double>(t) /
                            (7.0 * options.intervals_per_day));
      return noise * (0.5 + week_frac);
    }
  }
  return noise;
}

double WaitPerRequestMs(const TenantModelOptions& options,
                        const TenantParams& params, Rng& rng,
                        ResourceKind kind, double util_frac,
                        double overload) {
  const double scale = params.wait_scale[static_cast<size_t>(kind)];
  // Queueing-knee growth: negligible at low utilization, steep near 1.
  const double u = std::clamp(util_frac, 0.0, 0.98);
  double wait = scale * u * u / (1.0 - u);
  // Unmet demand (demand beyond the assigned container): waits explode.
  wait *= 1.0 + 4.0 * std::max(0.0, overload - 1.0);
  if (params.smooth) wait *= 0.15;
  // Heavy-tailed measurement/interference noise.
  wait *= rng.LogNormal(0.0, options.wait_noise_sigma);
  // Wait storms unrelated to this resource's utilization (lock convoys,
  // checkpoint stalls, ...): the "large waits at low utilization" corner of
  // Figure 4.
  if (rng.Bernoulli(options.storm_probability)) {
    wait += rng.LogNormal(4.0, 1.3);
  }
  return wait;
}

}  // namespace

TenantInterval StepTenant(const container::Catalog& catalog,
                          const TenantModelOptions& options,
                          const TenantParams& params, TenantDynamics& dyn,
                          Rng& rng, int t, int applied_rung,
                          double demand_scale) {
  TenantInterval out;
  // demand_scale == 1.0 is bitwise exact (x * 1.0 == x), so the host-free
  // stream is untouched; the AR(1) recurrence inside PatternMultiplier sees
  // only its own state, so scaling cannot leak into later intervals either.
  const double multiplier =
      PatternMultiplier(options, params, dyn, rng, t) * demand_scale;
  for (ResourceKind kind : container::kAllResources) {
    out.demand.Set(kind, params.base_demand.Get(kind) * multiplier);
  }
  const container::ContainerSpec assigned =
      catalog.CheapestDominating(out.demand);
  out.assigned_rung = assigned.base_rung;
  // Utilization/waits follow the container actually applied; every RNG
  // draw below is value-independent of it, so overriding the rung cannot
  // perturb the stream.
  const container::ContainerSpec& effective =
      (applied_rung >= 0 && applied_rung != assigned.base_rung)
          ? catalog.rung(applied_rung)
          : assigned;

  const double rate_rps = std::max(0.2, params.base_rate_rps * multiplier);
  out.completed = std::max<int64_t>(1, rng.Poisson(rate_rps * 300.0));

  double total_wait = 0.0;
  for (ResourceKind kind : container::kAllResources) {
    const size_t ri = static_cast<size_t>(kind);
    const double alloc = effective.resources.Get(kind);
    const double demand = out.demand.Get(kind);
    const double util_frac =
        alloc > 0.0 ? std::min(1.0, demand / alloc) : 0.0;
    const double overload = alloc > 0.0 ? demand / alloc : 0.0;
    out.utilization_pct[ri] = 100.0 * util_frac;
    out.wait_ms[ri] =
        WaitPerRequestMs(options, params, rng, kind, util_frac, overload) *
        static_cast<double>(out.completed);
    total_wait += out.wait_ms[ri];
  }
  for (ResourceKind kind : container::kAllResources) {
    const size_t ri = static_cast<size_t>(kind);
    out.wait_pct[ri] =
        total_wait > 0.0 ? 100.0 * out.wait_ms[ri] / total_wait : 0.0;
  }
  return out;
}

TenantModel::TenantModel(int tenant_id, const container::Catalog* catalog,
                         const TenantModelOptions& options, Rng rng)
    : tenant_id_(tenant_id),
      catalog_(catalog),
      options_(options),
      rng_(rng) {
  DBSCALE_CHECK(catalog != nullptr);
  params_ = DrawTenantParams(*catalog_, options_, rng_);
}

TenantInterval TenantModel::Step(int t, int applied_rung,
                                 double demand_scale) {
  return StepTenant(*catalog_, options_, params_, dyn_, rng_, t,
                    applied_rung, demand_scale);
}

}  // namespace dbscale::fleet
