#include "src/fleet/tenant_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace dbscale::fleet {

using container::ResourceKind;
using container::ResourceVector;

const char* DemandPatternToString(DemandPattern p) {
  switch (p) {
    case DemandPattern::kSteady:
      return "steady";
    case DemandPattern::kDiurnal:
      return "diurnal";
    case DemandPattern::kBursty:
      return "bursty";
    case DemandPattern::kSpiky:
      return "spiky";
    case DemandPattern::kGrowth:
      return "growth";
  }
  return "?";
}

TenantModel::TenantModel(int tenant_id, const container::Catalog* catalog,
                         const TenantModelOptions& options, Rng rng)
    : tenant_id_(tenant_id),
      catalog_(catalog),
      options_(options),
      rng_(rng) {
  DBSCALE_CHECK(catalog != nullptr);

  const double pick = rng_.NextDouble();
  if (pick < options.p_steady) {
    pattern_ = DemandPattern::kSteady;
  } else if (pick < options.p_steady + options.p_diurnal) {
    pattern_ = DemandPattern::kDiurnal;
  } else if (pick < options.p_steady + options.p_diurnal + options.p_bursty) {
    pattern_ = DemandPattern::kBursty;
  } else if (pick < options.p_steady + options.p_diurnal +
                        options.p_bursty + options.p_spiky) {
    pattern_ = DemandPattern::kSpiky;
  } else {
    pattern_ = DemandPattern::kGrowth;
  }

  // Base demand: a tenant "size" spanning the catalog (lognormal), with
  // per-resource shape factors so tenants are CPU-heavy, I/O-heavy, etc.
  const ResourceVector largest = catalog_->largest().resources;
  const double size_factor =
      std::min(1.0, rng_.LogNormal(/*mu=*/-3.0, /*sigma=*/1.2));
  for (ResourceKind kind : container::kAllResources) {
    const double shape = rng_.LogNormal(0.0, 0.5);
    base_demand_.Set(kind, largest.Get(kind) * size_factor * shape);
  }
  smooth_ = rng_.Bernoulli(options.smooth_fraction);
  ar_sigma_ = options.ar_sigma *
              rng_.LogNormal(0.0, options.ar_sigma_spread);
  base_rate_rps_ = 2.0 + base_demand_.cpu_cores * 30.0;
  for (ResourceKind kind : container::kAllResources) {
    // Per-resource personality: how wait-prone this tenant's use of the
    // resource is (ms of wait per request at the queueing knee).
    wait_scale_[static_cast<size_t>(kind)] = rng_.LogNormal(2.0, 1.6);
  }
}

double TenantModel::PatternMultiplier(int t) {
  const double day_phase =
      2.0 * M_PI * static_cast<double>(t % options_.intervals_per_day) /
      static_cast<double>(options_.intervals_per_day);
  // AR(1) noise in log space, shared by all patterns.
  ar_state_ = options_.ar_rho * ar_state_ + rng_.Normal(0.0, ar_sigma_);
  const double noise = std::exp(ar_state_);

  switch (pattern_) {
    case DemandPattern::kSteady:
      return noise;
    case DemandPattern::kDiurnal:
      return noise * (0.62 + 0.38 * std::sin(day_phase));
    case DemandPattern::kBursty: {
      // Two-state Markov bursts, mean on-time ~16 intervals (80 min).
      if (burst_active_) {
        if (rng_.Bernoulli(1.0 / 16.0)) burst_active_ = false;
      } else {
        if (rng_.Bernoulli(1.0 / 48.0)) burst_active_ = true;
      }
      return noise * (burst_active_ ? 1.9 : 0.65);
    }
    case DemandPattern::kSpiky:
      return noise * (rng_.Bernoulli(0.02) ? 2.6 : 0.7);
    case DemandPattern::kGrowth: {
      const double week_frac =
          std::min(1.0, static_cast<double>(t) /
                            (7.0 * options_.intervals_per_day));
      return noise * (0.5 + week_frac);
    }
  }
  return noise;
}

double TenantModel::WaitPerRequestMs(ResourceKind kind, double util_frac,
                                     double overload) {
  const double scale = wait_scale_[static_cast<size_t>(kind)];
  // Queueing-knee growth: negligible at low utilization, steep near 1.
  const double u = std::clamp(util_frac, 0.0, 0.98);
  double wait = scale * u * u / (1.0 - u);
  // Unmet demand (demand beyond the assigned container): waits explode.
  wait *= 1.0 + 4.0 * std::max(0.0, overload - 1.0);
  if (smooth_) wait *= 0.15;
  // Heavy-tailed measurement/interference noise.
  wait *= rng_.LogNormal(0.0, options_.wait_noise_sigma);
  // Wait storms unrelated to this resource's utilization (lock convoys,
  // checkpoint stalls, ...): the "large waits at low utilization" corner of
  // Figure 4.
  if (rng_.Bernoulli(options_.storm_probability)) {
    wait += rng_.LogNormal(4.0, 1.3);
  }
  return wait;
}

TenantInterval TenantModel::Step(int t, int applied_rung) {
  TenantInterval out;
  const double multiplier = PatternMultiplier(t);
  for (ResourceKind kind : container::kAllResources) {
    out.demand.Set(kind, base_demand_.Get(kind) * multiplier);
  }
  const container::ContainerSpec assigned =
      catalog_->CheapestDominating(out.demand);
  out.assigned_rung = assigned.base_rung;
  // Utilization/waits follow the container actually applied; every RNG
  // draw below is value-independent of it, so overriding the rung cannot
  // perturb the stream.
  const container::ContainerSpec& effective =
      (applied_rung >= 0 && applied_rung != assigned.base_rung)
          ? catalog_->rung(applied_rung)
          : assigned;

  const double rate_rps = std::max(0.2, base_rate_rps_ * multiplier);
  out.completed = std::max<int64_t>(1, rng_.Poisson(rate_rps * 300.0));

  double total_wait = 0.0;
  for (ResourceKind kind : container::kAllResources) {
    const size_t ri = static_cast<size_t>(kind);
    const double alloc = effective.resources.Get(kind);
    const double demand = out.demand.Get(kind);
    const double util_frac =
        alloc > 0.0 ? std::min(1.0, demand / alloc) : 0.0;
    const double overload = alloc > 0.0 ? demand / alloc : 0.0;
    out.utilization_pct[ri] = 100.0 * util_frac;
    out.wait_ms[ri] =
        WaitPerRequestMs(kind, util_frac, overload) *
        static_cast<double>(out.completed);
    total_wait += out.wait_ms[ri];
  }
  for (ResourceKind kind : container::kAllResources) {
    const size_t ri = static_cast<size_t>(kind);
    out.wait_pct[ri] =
        total_wait > 0.0 ? 100.0 * out.wait_ms[ri] / total_wait : 0.0;
  }
  return out;
}

}  // namespace dbscale::fleet
