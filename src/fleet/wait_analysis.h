// Wait-vs-utilization analyses over fleet telemetry (Figures 4 and 6):
// the evidence that utilization and waits are each weakly predictive alone,
// and that wait distributions separate cleanly between low- and
// high-utilization populations (the basis for threshold calibration).

#ifndef DBSCALE_FLEET_WAIT_ANALYSIS_H_
#define DBSCALE_FLEET_WAIT_ANALYSIS_H_

#include <vector>

#include "src/common/result.h"
#include "src/fleet/fleet_sim.h"
#include "src/stats/cdf.h"

namespace dbscale::fleet {

/// Figure 4 summary for one resource: the wait-vs-utilization scatter
/// characterized by per-utilization-bucket wait quantiles plus the overall
/// rank correlation.
struct WaitUtilScatter {
  container::ResourceKind resource;
  /// Utilization bucket upper bounds (10, 20, ..., 100).
  std::vector<double> util_bucket_upper;
  /// p10 / p50 / p90 of wait ms within each bucket (log-wide band).
  std::vector<double> wait_p10, wait_p50, wait_p90;
  /// Spearman rho of (utilization, wait): positive but far from 1.
  double spearman_rho = 0.0;
  size_t num_points = 0;
};

/// Figure 6 for one resource: wait distributions split by utilization.
struct WaitSplitCdfs {
  container::ResourceKind resource;
  double low_util_below_pct = 30.0;
  double high_util_above_pct = 70.0;
  stats::EmpiricalCdf wait_ms_low_util;
  stats::EmpiricalCdf wait_ms_high_util;
  stats::EmpiricalCdf wait_pct_low_util;
  stats::EmpiricalCdf wait_pct_high_util;
  /// Wait per request, used for threshold calibration.
  stats::EmpiricalCdf wait_per_req_low_util;
  stats::EmpiricalCdf wait_per_req_high_util;
};

[[nodiscard]] Result<WaitUtilScatter> AnalyzeWaitUtilScatter(
    const FleetTelemetry& fleet, container::ResourceKind resource);

[[nodiscard]] Result<WaitSplitCdfs> AnalyzeWaitSplit(
    const FleetTelemetry& fleet, container::ResourceKind resource,
    double low_below_pct = 30.0, double high_above_pct = 70.0);

}  // namespace dbscale::fleet

#endif  // DBSCALE_FLEET_WAIT_ANALYSIS_H_
