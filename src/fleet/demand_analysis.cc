#include "src/fleet/demand_analysis.h"

#include <cmath>

namespace dbscale::fleet {

Result<IeiAnalysis> AnalyzeInterEventIntervals(const FleetTelemetry& fleet) {
  if (fleet.inter_event_minutes.empty()) {
    return Status::FailedPrecondition("fleet produced no change events");
  }
  IeiAnalysis out;
  out.cdf = stats::EmpiricalCdf(fleet.inter_event_minutes);
  for (double minutes : {60.0, 120.0, 360.0, 720.0, 1440.0}) {
    DBSCALE_ASSIGN_OR_RETURN(double frac,
                             out.cdf.FractionAtOrBelow(minutes));
    out.reference_points.emplace_back(minutes, 100.0 * frac);
  }
  return out;
}

Result<ChangeFrequencyAnalysis> AnalyzeChangeFrequency(
    const FleetTelemetry& fleet) {
  if (fleet.tenant_changes.empty()) {
    return Status::FailedPrecondition("fleet has no tenants");
  }
  ChangeFrequencyAnalysis out;
  out.bucket_bounds = {0.0, 1.0, 2.0, 3.0, 6.0, 12.0, 24.0,
                       std::numeric_limits<double>::infinity()};
  out.bucket_labels = {"0", "1", "2", "3", "6", "12", "24", "More"};
  out.bucket_pct.assign(out.bucket_bounds.size(), 0.0);

  const double n = static_cast<double>(fleet.tenant_changes.size());
  int at_least_1 = 0, at_least_6 = 0, more_than_24 = 0;
  for (const TenantChangeStats& t : fleet.tenant_changes) {
    // Bucket b holds tenants with bound[b-1] < changes/day <= bound[b]
    // (bucket 0: exactly no changes, mirroring the paper's "0" bar).
    size_t b = 0;
    while (b + 1 < out.bucket_bounds.size() &&
           t.changes_per_day > out.bucket_bounds[b]) {
      ++b;
    }
    out.bucket_pct[b] += 100.0 / n;
    if (t.changes_per_day >= 1.0) ++at_least_1;
    if (t.changes_per_day >= 6.0) ++at_least_6;
    if (t.changes_per_day > 24.0) ++more_than_24;
  }
  double cumulative = 0.0;
  for (double pct : out.bucket_pct) {
    cumulative += pct;
    out.cumulative_pct.push_back(cumulative);
  }
  out.fraction_at_least_1_per_day = at_least_1 / n;
  out.fraction_at_least_6_per_day = at_least_6 / n;
  out.fraction_more_than_24_per_day = more_than_24 / n;
  return out;
}

}  // namespace dbscale::fleet
