#include "src/fleet/checkpoint.h"

#include <cstdio>
#include <limits>

namespace dbscale::fleet {

namespace {

/// Streams bytes to a FILE* while folding them into the footer hash.
/// Errors latch: after the first short write every call is a no-op.
class Writer {
 public:
  explicit Writer(std::FILE* f) : f_(f) {}

  bool ok() const { return ok_; }
  uint64_t hash() const { return hash_.value; }

  void Bytes(const void* data, size_t n) {
    if (!ok_) return;
    if (std::fwrite(data, 1, n, f_) != n) {
      ok_ = false;
      return;
    }
    hash_.Bytes(data, n);
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void U32(uint32_t v) { Bytes(&v, sizeof(v)); }
  void I32(int32_t v) { Bytes(&v, sizeof(v)); }
  void U8(uint8_t v) { Bytes(&v, sizeof(v)); }
  void Dbl(double v) { Bytes(&v, sizeof(v)); }

  template <typename T>
  void Vec(const std::vector<T>& v) {
    U64(static_cast<uint64_t>(v.size()));
    Bytes(v.data(), v.size() * sizeof(T));
  }
  template <typename T, size_t N>
  void Arr(const std::array<T, N>& a) {
    Bytes(a.data(), N * sizeof(T));
  }

 private:
  std::FILE* f_;
  Fnv64Stream hash_;
  bool ok_ = true;
};

/// Bounds-checked reads from a fully-buffered checkpoint. Errors latch;
/// the caller checks ok() once per logical section.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  size_t pos() const { return pos_; }
  uint64_t hash() const { return hash_.value; }

  void Bytes(void* out, size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return;
    }
    std::memcpy(out, bytes_.data() + pos_, n);
    hash_.Bytes(bytes_.data() + pos_, n);
    pos_ += n;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  int32_t I32() {
    int32_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  uint8_t U8() {
    uint8_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  double Dbl() {
    double v = 0.0;
    Bytes(&v, sizeof(v));
    return v;
  }

  /// Reads a length-prefixed vector, rejecting lengths that do not match
  /// `expect` (so a corrupt length cannot trigger a huge allocation).
  template <typename T>
  void Vec(std::vector<T>* out, size_t expect) {
    const uint64_t n = U64();
    if (!ok_ || n != expect ||
        n > bytes_.size() / sizeof(T) + 1) {
      ok_ = false;
      return;
    }
    out->resize(static_cast<size_t>(n));
    Bytes(out->data(), out->size() * sizeof(T));
  }
  template <typename T, size_t N>
  void Arr(std::array<T, N>* out) {
    Bytes(out->data(), N * sizeof(T));
  }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
  Fnv64Stream hash_;
  bool ok_ = true;
};

void WriteAggregate(Writer& w, const FleetAggregate& agg) {
  w.U64(agg.tenants);
  w.U64(agg.hourly_records);
  w.U64(agg.total_changes);
  w.U64(agg.resize_failures);
  w.U64(agg.resize_retries);
  w.U64(agg.digest);
  w.Vec(agg.step_size_counts);
  w.Vec(agg.inter_event_gap_counts);
  w.Vec(agg.changes_per_tenant_counts);
  for (const auto& res : agg.resources) {
    w.Arr(res.util);
    w.Arr(res.wait_ms);
    w.Arr(res.wait_pct);
    w.Arr(res.wait_per_req);
    w.Arr(res.wait_per_req_low_util);
    w.Arr(res.wait_per_req_high_util);
    w.Dbl(res.util_sum);
    w.Dbl(res.wait_ms_sum);
  }
}

void ReadAggregate(Reader& r, FleetAggregate* agg, int num_rungs,
                   int num_intervals) {
  agg->Init(num_rungs, num_intervals);
  agg->tenants = r.U64();
  agg->hourly_records = r.U64();
  agg->total_changes = r.U64();
  agg->resize_failures = r.U64();
  agg->resize_retries = r.U64();
  agg->digest = r.U64();
  r.Vec(&agg->step_size_counts, static_cast<size_t>(num_rungs) + 1);
  r.Vec(&agg->inter_event_gap_counts, static_cast<size_t>(num_intervals));
  r.Vec(&agg->changes_per_tenant_counts,
        static_cast<size_t>(FleetAggregate::kMaxChangesTracked) + 1);
  for (auto& res : agg->resources) {
    r.Arr(&res.util);
    r.Arr(&res.wait_ms);
    r.Arr(&res.wait_pct);
    r.Arr(&res.wait_per_req);
    r.Arr(&res.wait_per_req_low_util);
    r.Arr(&res.wait_per_req_high_util);
    res.util_sum = r.Dbl();
    res.wait_ms_sum = r.Dbl();
  }
}

}  // namespace

Status SaveFleetCheckpoint(const std::string& path, uint64_t fingerprint,
                           int completed_intervals,
                           const FleetSoaState& state,
                           const std::vector<FleetAggregate>& block_aggs,
                           const host::HostMap* host_map) {
  if (path.empty()) return Status::InvalidArgument("empty checkpoint path");
  if (block_aggs.empty()) {
    return Status::InvalidArgument("no block aggregates to checkpoint");
  }
  if (state.host_sized() != (host_map != nullptr)) {
    return Status::InvalidArgument(
        "host map must be supplied exactly when the state has host arrays");
  }
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open checkpoint file: " + tmp);
  }

  const int num_tenants = state.num_tenants();
  Writer w(f);
  w.U64(kFleetCheckpointMagic);
  w.U32(kFleetCheckpointVersion);
  w.U64(fingerprint);
  w.I32(completed_intervals);
  w.I32(num_tenants);
  w.U8(state.fault_sized() ? 1 : 0);
  w.U8(state.host_sized() ? 1 : 0);
  w.I32(host_map != nullptr ? host_map->num_hosts() : 0);
  w.I32(static_cast<int32_t>(block_aggs.size()));
  w.I32(block_aggs.front().num_rungs);
  w.I32(block_aggs.front().num_intervals);

  w.Vec(state.rng_state);
  w.Vec(state.rng_inc);
  w.Vec(state.rng_cached_normal);
  w.Vec(state.rng_has_cached);
  w.Vec(state.ar_state);
  w.Vec(state.burst_active);
  w.Vec(state.prev_rung);
  w.Vec(state.last_change_interval);
  w.Vec(state.changes);
  w.Vec(state.tenant_digest);
  if (state.fault_sized()) {
    w.Vec(state.applied_rung);
    w.Vec(state.plan_rng_state);
    w.Vec(state.plan_rng_inc);
    w.Vec(state.plan_rng_cached_normal);
    w.Vec(state.plan_rng_has_cached);
    w.Vec(state.act_pending);
    w.Vec(state.act_target_rung);
    w.Vec(state.act_fate);
    w.Vec(state.act_remaining);
    w.Vec(state.act_attempt);
    w.Vec(state.act_last_target);
  }
  if (state.host_sized()) {
    w.Vec(state.host_of);
    w.Vec(state.act_kind);
    w.Vec(state.act_dest);
    w.Vec(state.prev_demand_cpu);
    for (const host::HostState& h : host_map->hosts()) {
      for (const auto kind : container::kAllResources) {
        w.Dbl(h.alloc.Get(kind));
      }
      for (const auto kind : container::kAllResources) {
        w.Dbl(h.reserved.Get(kind));
      }
      w.I32(h.num_tenants);
      w.Dbl(h.cpu_pressure);
      w.Dbl(h.throttle);
    }
    const host::HostMap::Counters& c = host_map->counters();
    w.U64(c.migrations_begun);
    w.U64(c.migrations_completed);
    w.U64(c.migrations_failed);
    w.U64(c.downtime_intervals);
    w.U64(c.saturated_host_intervals);
    w.U64(c.placement_holds);
  }
  for (const FleetAggregate& agg : block_aggs) WriteAggregate(w, agg);
  const uint64_t footer = w.hash();
  w.U64(footer);

  const bool write_ok = w.ok();
  const bool close_ok = std::fclose(f) == 0;
  if (!write_ok || !close_ok) {
    std::remove(tmp.c_str());
    return Status::IoError("short write while saving checkpoint: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename checkpoint into place: " + path);
  }
  return Status::OK();
}

Result<FleetCheckpointData> LoadFleetCheckpoint(
    const std::string& path, uint64_t expected_fingerprint) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open checkpoint file: " + path);
  }
  std::string bytes;
  {
    char buf[1 << 16];
    size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.append(buf, got);
    }
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
      return Status::IoError("read error on checkpoint file: " + path);
    }
  }

  Reader r(bytes);
  if (r.U64() != kFleetCheckpointMagic) {
    return Status::FailedPrecondition("not a fleet checkpoint: " + path);
  }
  const uint32_t version = r.U32();
  if (r.ok() && version != kFleetCheckpointVersion) {
    return Status::FailedPrecondition(
        "unsupported checkpoint version " + std::to_string(version));
  }
  const uint64_t fingerprint = r.U64();
  if (r.ok() && fingerprint != expected_fingerprint) {
    return Status::FailedPrecondition(
        "checkpoint fingerprint mismatch: the checkpoint was written by a "
        "run with different options/catalog/seed");
  }

  FleetCheckpointData data;
  data.completed_intervals = r.I32();
  const int32_t num_tenants = r.I32();
  const bool act_enabled = r.U8() != 0;
  const bool host_enabled = r.U8() != 0;
  const int32_t num_hosts = r.I32();
  const int32_t num_blocks = r.I32();
  const int32_t num_rungs = r.I32();
  const int32_t num_intervals = r.I32();
  if (!r.ok() || num_tenants <= 0 || num_blocks <= 0 || num_rungs <= 0 ||
      num_intervals <= 0 || data.completed_intervals <= 0 ||
      data.completed_intervals > num_intervals ||
      num_blocks > num_tenants ||
      (host_enabled ? num_hosts <= 0 : num_hosts != 0) ||
      (host_enabled && !act_enabled)) {
    return Status::IoError("truncated or corrupt checkpoint header: " + path);
  }

  const size_t n = static_cast<size_t>(num_tenants);
  data.state.Resize(num_tenants, act_enabled, host_enabled);
  r.Vec(&data.state.rng_state, n);
  r.Vec(&data.state.rng_inc, n);
  r.Vec(&data.state.rng_cached_normal, n);
  r.Vec(&data.state.rng_has_cached, n);
  r.Vec(&data.state.ar_state, n);
  r.Vec(&data.state.burst_active, n);
  r.Vec(&data.state.prev_rung, n);
  r.Vec(&data.state.last_change_interval, n);
  r.Vec(&data.state.changes, n);
  r.Vec(&data.state.tenant_digest, n);
  if (act_enabled) {
    r.Vec(&data.state.applied_rung, n);
    r.Vec(&data.state.plan_rng_state, n);
    r.Vec(&data.state.plan_rng_inc, n);
    r.Vec(&data.state.plan_rng_cached_normal, n);
    r.Vec(&data.state.plan_rng_has_cached, n);
    r.Vec(&data.state.act_pending, n);
    r.Vec(&data.state.act_target_rung, n);
    r.Vec(&data.state.act_fate, n);
    r.Vec(&data.state.act_remaining, n);
    r.Vec(&data.state.act_attempt, n);
    r.Vec(&data.state.act_last_target, n);
  }
  if (host_enabled) {
    r.Vec(&data.state.host_of, n);
    r.Vec(&data.state.act_kind, n);
    r.Vec(&data.state.act_dest, n);
    r.Vec(&data.state.prev_demand_cpu, n);
    data.hosts.resize(static_cast<size_t>(num_hosts));
    for (host::HostState& h : data.hosts) {
      for (const auto kind : container::kAllResources) {
        h.alloc.Set(kind, r.Dbl());
      }
      for (const auto kind : container::kAllResources) {
        h.reserved.Set(kind, r.Dbl());
      }
      h.num_tenants = r.I32();
      h.cpu_pressure = r.Dbl();
      h.throttle = r.Dbl();
    }
    data.host_counters.migrations_begun = r.U64();
    data.host_counters.migrations_completed = r.U64();
    data.host_counters.migrations_failed = r.U64();
    data.host_counters.downtime_intervals = r.U64();
    data.host_counters.saturated_host_intervals = r.U64();
    data.host_counters.placement_holds = r.U64();
  }
  data.block_aggs.resize(static_cast<size_t>(num_blocks));
  for (FleetAggregate& agg : data.block_aggs) {
    ReadAggregate(r, &agg, num_rungs, num_intervals);
  }
  if (!r.ok()) {
    return Status::IoError("truncated or corrupt checkpoint body: " + path);
  }

  // The footer hash covers every byte consumed so far; grab the running
  // value BEFORE reading the stored footer (which is not self-hashed).
  const uint64_t computed = r.hash();
  const uint64_t stored = r.U64();
  if (!r.ok() || stored != computed) {
    return Status::IoError("checkpoint footer hash mismatch (corrupt?): " +
                           path);
  }
  if (r.pos() != bytes.size()) {
    return Status::IoError("trailing bytes after checkpoint footer: " + path);
  }
  return data;
}

}  // namespace dbscale::fleet
