// Resource-demand-variation analysis over fleet telemetry (Section 2.2,
// Figure 2): how often do tenants' resource demands cross container-size
// boundaries, and by how much?

#ifndef DBSCALE_FLEET_DEMAND_ANALYSIS_H_
#define DBSCALE_FLEET_DEMAND_ANALYSIS_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/fleet/fleet_sim.h"
#include "src/stats/cdf.h"

namespace dbscale::fleet {

/// Figure 2(a): the CDF of the inter-event interval (IEI) between
/// container-change events, pooled service-wide.
struct IeiAnalysis {
  stats::EmpiricalCdf cdf;  // minutes
  /// Cumulative percentage at the paper's reference points (60, 120, 360,
  /// 720, 1440 minutes).
  std::vector<std::pair<double, double>> reference_points;
};

/// Figure 2(b): distribution of average container changes per day across
/// tenants, using the paper's buckets.
struct ChangeFrequencyAnalysis {
  /// Bucket upper bounds: 0, 1, 2, 3, 6, 12, 24, inf ("More").
  std::vector<double> bucket_bounds;
  std::vector<std::string> bucket_labels;
  /// Percentage of tenants per bucket and cumulative percentage.
  std::vector<double> bucket_pct;
  std::vector<double> cumulative_pct;
  /// Headline statistics the paper quotes.
  double fraction_at_least_1_per_day = 0.0;
  double fraction_at_least_6_per_day = 0.0;
  double fraction_more_than_24_per_day = 0.0;
};

[[nodiscard]] Result<IeiAnalysis> AnalyzeInterEventIntervals(
    const FleetTelemetry& fleet);

[[nodiscard]] Result<ChangeFrequencyAnalysis> AnalyzeChangeFrequency(
    const FleetTelemetry& fleet);

}  // namespace dbscale::fleet

#endif  // DBSCALE_FLEET_DEMAND_ANALYSIS_H_
