// Versioned binary checkpoint format for the fleet scale runner.
//
// Layout (little-endian, not portable across endianness):
//
//   u64  magic      "DBSCFCK1"
//   u32  version    kFleetCheckpointVersion
//   u64  fingerprint  FleetScaleFingerprint of the writing run
//   i32  completed_intervals
//   i32  num_tenants
//   u8   act_enabled   (fault plan OR host plane: actuation arrays present)
//   u8   host_enabled  (v2: host arrays + per-host states present)
//   i32  num_hosts     (v2: 0 when the host plane is disabled)
//   i32  num_blocks
//   i32  num_rungs, i32 num_intervals      (aggregate shape)
//   <SoA arrays>       each as u64 length + raw element bytes
//   <host states>      per host: alloc + reserved (4 dbl each), i32
//                      num_tenants, dbl cpu_pressure, dbl throttle; then
//                      the six u64 host counters (host mode only)
//   <block aggregates> in block order, scalars + length-prefixed vectors
//   u64  footer     FNV-1a over every byte above
//
// Every read is bounds-checked; truncation, corruption (footer mismatch),
// a wrong magic/version, or a fingerprint from a run with different
// options all produce a clean Status error — never UB, never a partial
// resume. Writes go to `path + ".tmp"` and rename into place so a crash
// mid-write cannot leave a torn checkpoint at `path`.

#ifndef DBSCALE_FLEET_CHECKPOINT_H_
#define DBSCALE_FLEET_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/fleet/fleet_aggregate.h"
#include "src/fleet/fleet_scale.h"

namespace dbscale::fleet {

inline constexpr uint64_t kFleetCheckpointMagic = 0x314B434643534244ULL;
/// v2 adds the host plane: a host_enabled flag, the host-residency SoA
/// arrays, and the per-host accounting states + counters. v1 checkpoints
/// are rejected (the SoA layout around them changed too).
inline constexpr uint32_t kFleetCheckpointVersion = 2;

/// Everything a resume needs (tenant constants are re-derived from the
/// seed, not stored).
struct FleetCheckpointData {
  int completed_intervals = 0;
  FleetSoaState state;
  std::vector<FleetAggregate> block_aggs;
  /// Host plane (empty / zero when it was disabled in the writing run).
  std::vector<host::HostState> hosts;
  host::HostMap::Counters host_counters;
};

/// `host_map` must be non-null exactly when `state.host_sized()`.
[[nodiscard]] Status SaveFleetCheckpoint(
    const std::string& path, uint64_t fingerprint, int completed_intervals,
    const FleetSoaState& state,
    const std::vector<FleetAggregate>& block_aggs,
    const host::HostMap* host_map = nullptr);

/// Fails with IoError on truncation/corruption and FailedPrecondition on
/// a magic/version/fingerprint mismatch.
[[nodiscard]] Result<FleetCheckpointData> LoadFleetCheckpoint(
    const std::string& path, uint64_t expected_fingerprint);

}  // namespace dbscale::fleet

#endif  // DBSCALE_FLEET_CHECKPOINT_H_
