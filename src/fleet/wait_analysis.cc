#include "src/fleet/wait_analysis.h"

#include <algorithm>

#include "src/stats/robust.h"
#include "src/stats/spearman.h"

namespace dbscale::fleet {

Result<WaitUtilScatter> AnalyzeWaitUtilScatter(
    const FleetTelemetry& fleet, container::ResourceKind resource) {
  if (fleet.hourly.empty()) {
    return Status::FailedPrecondition("fleet has no hourly records");
  }
  const size_t ri = static_cast<size_t>(resource);

  WaitUtilScatter out;
  out.resource = resource;
  std::vector<double> utils, waits;
  utils.reserve(fleet.hourly.size());
  waits.reserve(fleet.hourly.size());
  std::vector<std::vector<double>> buckets(10);
  for (const HourlyRecord& r : fleet.hourly) {
    const double util = r.utilization_pct[ri];
    const double wait = r.wait_ms[ri];
    utils.push_back(util);
    waits.push_back(wait);
    const size_t b = std::min<size_t>(9, static_cast<size_t>(util / 10.0));
    buckets[b].push_back(wait);
  }
  out.num_points = utils.size();
  DBSCALE_ASSIGN_OR_RETURN(out.spearman_rho,
                           stats::SpearmanCorrelation(utils, waits));
  for (size_t b = 0; b < buckets.size(); ++b) {
    out.util_bucket_upper.push_back(10.0 * static_cast<double>(b + 1));
    if (buckets[b].empty()) {
      out.wait_p10.push_back(0.0);
      out.wait_p50.push_back(0.0);
      out.wait_p90.push_back(0.0);
      continue;
    }
    std::sort(buckets[b].begin(), buckets[b].end());
    out.wait_p10.push_back(stats::PercentileSorted(buckets[b], 10.0));
    out.wait_p50.push_back(stats::PercentileSorted(buckets[b], 50.0));
    out.wait_p90.push_back(stats::PercentileSorted(buckets[b], 90.0));
  }
  return out;
}

Result<WaitSplitCdfs> AnalyzeWaitSplit(const FleetTelemetry& fleet,
                                       container::ResourceKind resource,
                                       double low_below_pct,
                                       double high_above_pct) {
  if (fleet.hourly.empty()) {
    return Status::FailedPrecondition("fleet has no hourly records");
  }
  if (low_below_pct >= high_above_pct) {
    return Status::InvalidArgument("low bound must be below high bound");
  }
  const size_t ri = static_cast<size_t>(resource);

  WaitSplitCdfs out;
  out.resource = resource;
  out.low_util_below_pct = low_below_pct;
  out.high_util_above_pct = high_above_pct;
  for (const HourlyRecord& r : fleet.hourly) {
    const double util = r.utilization_pct[ri];
    if (util < low_below_pct) {
      out.wait_ms_low_util.Add(r.wait_ms[ri]);
      out.wait_pct_low_util.Add(r.wait_pct[ri]);
      out.wait_per_req_low_util.Add(r.wait_ms_per_request[ri]);
    } else if (util > high_above_pct) {
      out.wait_ms_high_util.Add(r.wait_ms[ri]);
      out.wait_pct_high_util.Add(r.wait_pct[ri]);
      out.wait_per_req_high_util.Add(r.wait_ms_per_request[ri]);
    }
  }
  if (out.wait_ms_low_util.empty() || out.wait_ms_high_util.empty()) {
    return Status::FailedPrecondition(
        "not enough low/high-utilization hours to split");
  }
  return out;
}

}  // namespace dbscale::fleet
