// Million-tenant fleet runner: structure-of-arrays tenant state,
// block-sharded streaming aggregation, checkpoint/resume.
//
// The exact fleet path (fleet_sim.h) materializes per-tenant telemetry;
// at 10^6 tenants that is tens of GB and minutes of merge time. This
// runner holds every tenant's hot state in flat parallel arrays
// (~60 bytes/tenant checkpointed + ~90 bytes of derived constants),
// partitions tenants into contiguous blocks, and folds each emission into
// a per-block FleetAggregate the moment it is produced. 10^6 tenants over
// a day of 5-minute intervals fit in a few hundred MB and minutes of wall
// clock.
//
// Determinism contract (same as the exact path, extended to time slicing):
//   * every tenant's generator is pre-forked serially from the root seed,
//     so streams are fixed before any dispatch;
//   * blocks are the unit of scheduling; each block's aggregate and metric
//     shard are written only while that block is claimed, and the final
//     merge walks blocks in index order — so the run digest is
//     bit-identical at any DBSCALE_NUM_THREADS;
//   * time advances in epochs (hour-aligned slices). Per-block aggregates
//     persist across epochs and are merged once at the end, so the digest
//     is also independent of epoch boundaries — and a run resumed from a
//     checkpoint is bit-identical to one that never stopped.
//
// Checkpoints (checkpoint.h) are written at epoch boundaries: hot SoA
// state + RNG positions + per-block aggregates. Tenant constants
// (TenantParams) are NOT checkpointed — Resume() re-runs the deterministic
// init from the seed and then overwrites the hot state, trading a cheap
// re-draw for a ~60% smaller checkpoint. Observability metrics are a
// side-channel, not part of the checkpoint: a resumed run's metrics cover
// only the intervals it executed.

#ifndef DBSCALE_FLEET_FLEET_SCALE_H_
#define DBSCALE_FLEET_FLEET_SCALE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/fault/fault_plan.h"
#include "src/fleet/fleet_aggregate.h"
#include "src/fleet/tenant_model.h"
#include "src/host/host_map.h"
#include "src/host/placement.h"
#include "src/obs/pipeline.h"

namespace dbscale::fleet {

/// \brief Hot per-tenant state as structure-of-arrays: one flat vector per
/// field, indexed by tenant. The per-interval loop touches only these
/// (plus the read-only params array); everything is trivially serializable
/// as raw bytes for the checkpoint format.
struct FleetSoaState {
  // Model generator position.
  std::vector<uint64_t> rng_state;
  std::vector<uint64_t> rng_inc;
  std::vector<double> rng_cached_normal;
  std::vector<uint8_t> rng_has_cached;
  // Step recurrence.
  std::vector<double> ar_state;
  std::vector<uint8_t> burst_active;
  // Change tracking.
  std::vector<int32_t> prev_rung;
  std::vector<int32_t> last_change_interval;
  std::vector<int32_t> changes;
  /// Running FNV-1a over this tenant's emission stream, folded in
  /// ascending interval order — the unit the run digest is chained from
  /// (tenant order within a block, block order at the merge), which is
  /// what makes the digest independent of threads and epoch slicing.
  std::vector<uint64_t> tenant_digest;
  // Actuation channel: the applied rung, the fault stream's generator
  // position and the in-flight resize. Sized when the fault plan OR the
  // host plane is enabled (the host plane routes every resize through the
  // actuator so migrations can be slow) — a null run does not pay for them.
  std::vector<int32_t> applied_rung;
  std::vector<uint64_t> plan_rng_state;
  std::vector<uint64_t> plan_rng_inc;
  std::vector<double> plan_rng_cached_normal;
  std::vector<uint8_t> plan_rng_has_cached;
  std::vector<uint8_t> act_pending;
  std::vector<int32_t> act_target_rung;
  std::vector<uint8_t> act_fate;
  std::vector<int32_t> act_remaining;
  std::vector<int32_t> act_attempt;
  std::vector<int32_t> act_last_target;
  // Host plane (sized only when it is enabled): tenant residency plus the
  // in-flight actuation's shape (kind + migration destination) and the
  // previous interval's CPU demand, which drives next interval's
  // interference pressure.
  std::vector<int32_t> host_of;
  std::vector<uint8_t> act_kind;   ///< host::ActuationKind of the pending act
  std::vector<int32_t> act_dest;   ///< migration destination host (-1 = none)
  std::vector<double> prev_demand_cpu;
  /// Per-tenant constants: rebuilt deterministically from the seed on
  /// resume, never checkpointed.
  std::vector<TenantParams> params;

  void Resize(int num_tenants, bool act_enabled, bool host_enabled);
  int num_tenants() const { return static_cast<int>(rng_state.size()); }
  bool fault_sized() const { return !applied_rung.empty(); }
  bool host_sized() const { return !host_of.empty(); }

  Rng::State ModelRngAt(size_t i) const;
  void SetModelRngAt(size_t i, const Rng::State& s);
  Rng::State PlanRngAt(size_t i) const;
  void SetPlanRngAt(size_t i, const Rng::State& s);

  /// Bytes in the checkpointed (hot) arrays / in everything incl. params.
  uint64_t HotBytes() const;
  uint64_t TotalBytes() const;
};

/// Correlated-demand injection: every tenant seed-placed on hosts
/// [0, num_hosts_hit) has its demand multiplied during the window, so a
/// handful of machines saturate together — the "flash crowd" that turns
/// scale-ups into migrations. Requires the host plane.
struct FlashCrowdOptions {
  /// First interval of the crowd; -1 disables it.
  int start_interval = -1;
  int duration_intervals = 12;
  double demand_multiplier = 2.5;
  /// Number of seed hosts whose residents are affected.
  int num_hosts_hit = 1;

  bool enabled() const { return start_interval >= 0; }
  Status Validate() const;
};

struct FleetScaleOptions {
  int num_tenants = 10000;
  /// 5-minute intervals (default one day; the exact path defaults to a
  /// week, which at 10^6 tenants is a deliberate choice, not a default).
  int num_intervals = 288;
  uint64_t seed = 7;
  /// 0 = process default (DBSCALE_NUM_THREADS, else hardware); 1 = serial.
  int num_threads = 0;
  /// Tenants per scheduling block. Also the metric-shard and aggregate
  /// granularity, so it is part of the digest contract and the checkpoint
  /// fingerprint.
  int block_size = 2048;
  /// Time-slice length in intervals; must be a positive multiple of 12
  /// (hour-aligned, so hour buffers are empty at slice boundaries and need
  /// not be checkpointed). Part of the checkpoint fingerprint; the digest
  /// itself is epoch-invariant.
  int epoch_intervals = 288;
  /// Stop after the first epoch boundary >= this many intervals, returning
  /// a partial outcome (and writing a checkpoint when a path is set).
  /// 0 = run to completion. For interruption tests and staged runs.
  int stop_after_intervals = 0;
  TenantModelOptions tenant;
  fault::FaultPlanOptions fault;
  /// Host placement & interference plane. Disabled (num_hosts == 0) keeps
  /// the block-major fast path and pre-host digests bit-identical; enabled
  /// switches the runner to the interval-major loop (hosts couple tenants
  /// within an interval, so blocks can no longer run whole epochs apart).
  host::HostOptions host;
  FlashCrowdOptions flash_crowd;
  /// Not owned; nullptr = off. One metric shard per BLOCK (not per
  /// tenant), merged in block order: bit-identical at any thread count.
  obs::Observability* obs = nullptr;
  /// When non-empty, a checkpoint is written here (atomically, via a .tmp
  /// sibling) every `checkpoint_every_epochs` epochs and at a
  /// stop_after_intervals stop.
  std::string checkpoint_path;
  int checkpoint_every_epochs = 1;

  Status Validate() const;
  int NumBlocks() const;
};

struct FleetScaleOutcome {
  /// False when the run stopped at stop_after_intervals.
  bool complete = false;
  int completed_intervals = 0;
  /// Block aggregates merged in block order. Partial (and without the
  /// per-tenant change totals) when !complete. When the host plane ran,
  /// the host digest is chained in FIRST (host-then-tenant order), so the
  /// digest covers placement state as well as telemetry.
  FleetAggregate aggregate;
  /// Host-plane totals (all zero when the plane is disabled).
  host::HostMap::Counters host;
  /// HostMap::Digest() at the end of the run (0 when disabled).
  uint64_t host_digest = 0;
};

/// Hash of everything that defines a run's bit stream: catalog shape,
/// tenant/fault options, seed, sizes, block/epoch geometry. Checkpoints
/// embed it; Resume refuses a checkpoint whose fingerprint differs.
uint64_t FleetScaleFingerprint(const container::Catalog& catalog,
                               const FleetScaleOptions& options);

/// \brief The scale runner. One instance per run; Run() (or Resume())
/// executes to completion or to the configured stop.
class FleetScaleRunner {
 public:
  FleetScaleRunner(const container::Catalog& catalog,
                   FleetScaleOptions options);

  /// Initializes tenant state from the seed and executes the run.
  Result<FleetScaleOutcome> Run();

  /// Loads `checkpoint_path` (validating magic/version/fingerprint/
  /// footer), rebuilds tenant constants from the seed, and continues the
  /// run. The outcome is bit-identical to an uninterrupted Run() with the
  /// same options.
  static Result<FleetScaleOutcome> Resume(const container::Catalog& catalog,
                                          FleetScaleOptions options,
                                          const std::string& checkpoint_path);

  /// Resident per-tenant state (SoA arrays + params), for the memory math
  /// in benchmarks and DESIGN.md.
  uint64_t StateBytes() const { return state_.TotalBytes(); }

 private:
  Status InitTenants();
  Result<FleetScaleOutcome> RunFrom(int start_interval);
  void RunBlockEpoch(int block, int t0, int t1, obs::MetricShard* shard);

  // -- Host-mode (interval-major) machinery --------------------------------
  /// Serial pre-step: ticks every pending actuation in tenant order
  /// (migration cutover / abort with host accounting), then refreshes
  /// interference throttles from the previous interval's demand.
  void HostTickActuations(int t);
  /// Parallel step: one block's tenants for interval `t` (demand, wait
  /// inflation, hour folds, change tracking).
  void HostStepBlock(int block, int t, obs::MetricShard* shard);
  /// Serial post-step: begins local resizes / migrations in tenant order.
  void HostBeginActuations(int t);

  container::Catalog catalog_;
  FleetScaleOptions options_;
  bool fault_enabled_ = false;
  bool host_enabled_ = false;
  FleetSoaState state_;
  std::vector<FleetAggregate> block_aggs_;
  obs::ShardPool shard_pool_;
  int completed_intervals_ = 0;

  // Host-mode runtime state. The map is rebuilt on Resume from the
  // checkpointed per-host states; everything below except the map is
  // derived per interval (or at init) and never checkpointed.
  std::optional<host::HostMap> host_map_;
  std::unique_ptr<host::PlacementPolicy> placement_;
  std::vector<uint8_t> flash_affected_;   ///< seed-placement derived
  std::vector<double> host_demand_;       ///< per-host CPU demand scratch
  std::vector<double> tenant_throttle_;   ///< per-tenant wait inflation
  std::vector<int32_t> assigned_scratch_; ///< this interval's assigned rung
  std::vector<double> hour_scratch_;      ///< per-tenant hour buffers
};

}  // namespace dbscale::fleet

#endif  // DBSCALE_FLEET_FLEET_SCALE_H_
