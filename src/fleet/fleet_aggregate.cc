#include "src/fleet/fleet_aggregate.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace dbscale::fleet {

namespace {
constexpr double kIntervalMinutes = 5.0;
}  // namespace

void FleetAggregate::Init(int catalog_rungs, int run_intervals) {
  DBSCALE_CHECK(catalog_rungs > 0 && run_intervals > 0);
  num_rungs = catalog_rungs;
  num_intervals = run_intervals;
  step_size_counts.assign(static_cast<size_t>(num_rungs) + 1, 0);
  inter_event_gap_counts.assign(static_cast<size_t>(num_intervals), 0);
  changes_per_tenant_counts.assign(
      static_cast<size_t>(kMaxChangesTracked) + 1, 0);
}

size_t FleetAggregate::PctBucket(double v) {
  if (!(v > 0.0)) return 0;
  if (v >= 100.0) return kPctBuckets - 1;
  return static_cast<size_t>(v);
}

size_t FleetAggregate::WaitBucket(double v) {
  if (!(v > 0.0)) return 0;
  const int e = std::ilogb(v);  // floor(log2 v)
  const int bucket = e + 10;
  return static_cast<size_t>(
      std::clamp(bucket, 1, static_cast<int>(kWaitBuckets) - 1));
}

// dbscale-hot: once per tenant-hour across the million-tenant sweep.
void FleetAggregate::AddHourlyRecord(const HourlyRecord& record) {
  for (int ri = 0; ri < container::kNumResources; ++ri) {
    ResourceAgg& agg = resources[static_cast<size_t>(ri)];
    const double util = record.utilization_pct[static_cast<size_t>(ri)];
    const double wait = record.wait_ms[static_cast<size_t>(ri)];
    const double pct = record.wait_pct[static_cast<size_t>(ri)];
    const double wpr = record.wait_ms_per_request[static_cast<size_t>(ri)];
    agg.util[PctBucket(util)] += 1;
    agg.wait_ms[WaitBucket(wait)] += 1;
    agg.wait_pct[PctBucket(pct)] += 1;
    agg.wait_per_req[WaitBucket(wpr)] += 1;
    if (util < kLowUtilBelowPct) {
      agg.wait_per_req_low_util[WaitBucket(wpr)] += 1;
    } else if (util > kHighUtilAbovePct) {
      agg.wait_per_req_high_util[WaitBucket(wpr)] += 1;
    }
    agg.util_sum += util;
    agg.wait_ms_sum += wait;
  }
  ++hourly_records;
}

// dbscale-hot: per rung-change event during streaming aggregation.
void FleetAggregate::AddChangeEvent(int step, int gap_intervals) {
  DBSCALE_CHECK(!step_size_counts.empty());
  step_size_counts[static_cast<size_t>(std::min(step, num_rungs))] += 1;
  ++total_changes;
  if (gap_intervals > 0) {
    const size_t gap = std::min<size_t>(
        static_cast<size_t>(gap_intervals), inter_event_gap_counts.size() - 1);
    inter_event_gap_counts[gap] += 1;
  }
}

// dbscale-hot: once per tenant at end of simulation.
void FleetAggregate::AddTenantChanges(int num_changes) {
  changes_per_tenant_counts[static_cast<size_t>(
      std::min(num_changes, kMaxChangesTracked))] += 1;
  ++tenants;
}

// dbscale-hot: chained into the determinism digest every record.
void FleetAggregate::ChainDigest(uint64_t value) {
  Fnv64Stream h{digest};
  h.U64(value);
  digest = h.value;
}

void FleetAggregate::MergeFrom(const FleetAggregate& other) {
  DBSCALE_CHECK(num_rungs == other.num_rungs &&
                num_intervals == other.num_intervals);
  tenants += other.tenants;
  hourly_records += other.hourly_records;
  total_changes += other.total_changes;
  resize_failures += other.resize_failures;
  resize_retries += other.resize_retries;
  for (size_t i = 0; i < step_size_counts.size(); ++i) {
    step_size_counts[i] += other.step_size_counts[i];
  }
  for (size_t i = 0; i < inter_event_gap_counts.size(); ++i) {
    inter_event_gap_counts[i] += other.inter_event_gap_counts[i];
  }
  for (size_t i = 0; i < changes_per_tenant_counts.size(); ++i) {
    changes_per_tenant_counts[i] += other.changes_per_tenant_counts[i];
  }
  for (size_t ri = 0; ri < resources.size(); ++ri) {
    ResourceAgg& dst = resources[ri];
    const ResourceAgg& src = other.resources[ri];
    for (size_t b = 0; b < kPctBuckets; ++b) {
      dst.util[b] += src.util[b];
      dst.wait_pct[b] += src.wait_pct[b];
    }
    for (size_t b = 0; b < kWaitBuckets; ++b) {
      dst.wait_ms[b] += src.wait_ms[b];
      dst.wait_per_req[b] += src.wait_per_req[b];
      dst.wait_per_req_low_util[b] += src.wait_per_req_low_util[b];
      dst.wait_per_req_high_util[b] += src.wait_per_req_high_util[b];
    }
    dst.util_sum += src.util_sum;
    dst.wait_ms_sum += src.wait_ms_sum;
  }
  Fnv64Stream h{digest};
  h.U64(other.digest);
  digest = h.value;
}

namespace {

double StepFractionAtOrBelow(const std::vector<uint64_t>& counts, size_t k) {
  uint64_t total = 0, small = 0;
  for (size_t s = 1; s < counts.size(); ++s) {
    total += counts[s];
    if (s <= k) small += counts[s];
  }
  return total > 0
             ? static_cast<double>(small) / static_cast<double>(total)
             : 0.0;
}

}  // namespace

double FleetAggregate::OneStepFraction() const {
  return StepFractionAtOrBelow(step_size_counts, 1);
}

double FleetAggregate::AtMostTwoStepFraction() const {
  return StepFractionAtOrBelow(step_size_counts, 2);
}

double FleetAggregate::InterEventFractionAtOrBelow(double minutes) const {
  uint64_t total = 0, within = 0;
  for (size_t gap = 1; gap < inter_event_gap_counts.size(); ++gap) {
    total += inter_event_gap_counts[gap];
    if (static_cast<double>(gap) * kIntervalMinutes <= minutes) {
      within += inter_event_gap_counts[gap];
    }
  }
  return total > 0
             ? static_cast<double>(within) / static_cast<double>(total)
             : 0.0;
}

double FleetAggregate::TenantFractionWithChangesAtLeast(int n) const {
  if (tenants == 0) return 0.0;
  uint64_t at_least = 0;
  const size_t from =
      static_cast<size_t>(std::clamp(n, 0, kMaxChangesTracked));
  for (size_t i = from; i < changes_per_tenant_counts.size(); ++i) {
    at_least += changes_per_tenant_counts[i];
  }
  return static_cast<double>(at_least) / static_cast<double>(tenants);
}

double FleetAggregate::WaitPerReqPercentileUpperBound(
    container::ResourceKind kind, int band, double pct) const {
  const ResourceAgg& agg = resources[static_cast<size_t>(kind)];
  const std::array<uint64_t, kWaitBuckets>& counts =
      band == 1 ? agg.wait_per_req_low_util
      : band == 2 ? agg.wait_per_req_high_util
                  : agg.wait_per_req;
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double target = std::clamp(pct, 0.0, 100.0) / 100.0 *
                        static_cast<double>(total);
  uint64_t cum = 0;
  for (size_t b = 0; b < kWaitBuckets; ++b) {
    cum += counts[b];
    if (static_cast<double>(cum) >= target && counts[b] > 0) {
      // Upper bound of bucket b (bucket 0 is "no wait").
      return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 9);
    }
  }
  return std::ldexp(1.0, static_cast<int>(kWaitBuckets) - 10);
}

FleetAggregate FleetAggregate::FromTelemetry(const FleetTelemetry& telemetry,
                                             int num_rungs) {
  FleetAggregate out;
  out.Init(num_rungs, telemetry.num_intervals);
  for (const HourlyRecord& record : telemetry.hourly) {
    out.AddHourlyRecord(record);
  }
  // The exact path pools steps and gaps separately (not as paired events),
  // so counts are folded directly; total_changes comes from the step
  // counts, which are incremented once per change event.
  out.total_changes = 0;
  for (size_t s = 1; s < telemetry.step_size_counts.size() &&
                     s < out.step_size_counts.size();
       ++s) {
    out.step_size_counts[s] +=
        static_cast<uint64_t>(telemetry.step_size_counts[s]);
    out.total_changes += static_cast<uint64_t>(telemetry.step_size_counts[s]);
  }
  for (const double minutes : telemetry.inter_event_minutes) {
    const long gap = std::lround(minutes / kIntervalMinutes);
    if (gap > 0) {
      const size_t idx = std::min<size_t>(
          static_cast<size_t>(gap), out.inter_event_gap_counts.size() - 1);
      out.inter_event_gap_counts[idx] += 1;
    }
  }
  out.tenants = 0;
  for (const TenantChangeStats& stats : telemetry.tenant_changes) {
    out.changes_per_tenant_counts[static_cast<size_t>(
        std::min(stats.num_changes, kMaxChangesTracked))] += 1;
    ++out.tenants;
  }
  out.resize_failures = telemetry.resize_failures;
  out.resize_retries = telemetry.resize_retries;
  return out;
}

}  // namespace dbscale::fleet
