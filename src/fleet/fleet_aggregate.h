// Streaming fleet aggregates: fixed-bucket histograms instead of
// materialized per-tenant telemetry vectors.
//
// The exact fleet path (fleet_sim.h) materializes every hourly record and
// inter-event gap — fine at 10^3..10^4 tenants, hopeless at 10^6 (48M
// hourly records/day would dominate memory and merge time). The scale
// runner (fleet_scale.h) instead folds each emission into a FleetAggregate
// the moment it is produced and throws the record away. All counts are
// exact, not sketches:
//
//   * inter-event gaps are multiples of the 5-minute interval, so a count
//     per integer gap-in-intervals loses nothing vs the pooled vector;
//   * step sizes and changes-per-tenant are small integers;
//   * hourly medians are reals, so they are bucketed (1%-wide utilization
//     and wait-share buckets, power-of-two wait buckets) — enough for the
//     Figure 2/4/6-style fractions and calibration-band percentiles the
//     analyses consume.
//
// Determinism contract: integer counts are addition-order independent, so
// a streaming run merged in block order matches the FromTelemetry oracle
// exactly; double sums (util_sum etc.) depend on fold order and are only
// reproducible between runs with the same (block_size, epoch_intervals).
// The `digest` is chained, not folded here: the scale runner hashes each
// TENANT's emission stream (always in ascending interval order, so epoch
// slicing cannot reorder it), chains tenant digests into the block digest
// in tenant order, and MergeFrom chains block digests in merge order —
// bit-identical at any thread count, any epoch length, and across
// checkpoint/resume.

#ifndef DBSCALE_FLEET_FLEET_AGGREGATE_H_
#define DBSCALE_FLEET_FLEET_AGGREGATE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/common/fnv.h"
#include "src/container/container.h"
#include "src/fleet/fleet_sim.h"

namespace dbscale::fleet {

/// The streaming digest primitive (moved to src/common/fnv.h so host/ and
/// ingest/ can fold digests without a fleet dependency); re-exported here
/// for the existing fleet::Fnv64Stream call sites.
using ::dbscale::Fnv64Stream;

/// \brief Exact streaming aggregate of one fleet run (or one tenant
/// block's share of it). Plain data plus fold/merge/query helpers, like
/// FleetTelemetry.
struct FleetAggregate {
  /// 1%-wide buckets [0,1),[1,2),..,[99,100) plus a final bucket for 100
  /// (utilization is capped at 100, wait shares sum to 100).
  static constexpr size_t kPctBuckets = 101;
  /// Power-of-two wait buckets: bucket 0 holds v <= 0, bucket b >= 1 holds
  /// 2^(b-10) <= v < 2^(b-9) (so bucket 1 starts at ~0.001 ms), clamped
  /// above into the last bucket (~2^43 ms).
  static constexpr size_t kWaitBuckets = 54;
  /// Changes-per-tenant counts are exact up to this; busier tenants land
  /// in the final bucket.
  static constexpr int kMaxChangesTracked = 4096;

  /// Per-resource-dimension histograms over the hourly medians. Waits are
  /// split by the hour's utilization into the calibration bands the paper
  /// uses (Figure 6): low-utilization hours (< 30%) and high-utilization
  /// hours (> 70%); mid-band hours count only toward the unsplit totals.
  struct ResourceAgg {
    std::array<uint64_t, kPctBuckets> util{};
    std::array<uint64_t, kWaitBuckets> wait_ms{};
    std::array<uint64_t, kPctBuckets> wait_pct{};
    std::array<uint64_t, kWaitBuckets> wait_per_req{};
    std::array<uint64_t, kWaitBuckets> wait_per_req_low_util{};
    std::array<uint64_t, kWaitBuckets> wait_per_req_high_util{};
    double util_sum = 0.0;
    double wait_ms_sum = 0.0;
  };

  // -- Shape (fixed by Init) ----------------------------------------------
  int num_rungs = 0;
  int num_intervals = 0;

  // -- Counters -----------------------------------------------------------
  uint64_t tenants = 0;
  uint64_t hourly_records = 0;
  uint64_t total_changes = 0;
  uint64_t resize_failures = 0;
  uint64_t resize_retries = 0;

  /// |rung step| counts per change event; index min(step, num_rungs),
  /// index 0 unused (same convention as FleetTelemetry).
  std::vector<uint64_t> step_size_counts;
  /// Count per inter-event gap in intervals (gap = multiples of 5 min;
  /// index 0 unused, max possible gap is num_intervals - 1).
  std::vector<uint64_t> inter_event_gap_counts;
  /// Count of tenants by total change count, index min(n, kMaxChangesTracked).
  std::vector<uint64_t> changes_per_tenant_counts;

  std::array<ResourceAgg, container::kNumResources> resources{};

  /// Chain of per-tenant stream digests (see header comment). Left at the
  /// FNV offset basis by FromTelemetry — only streaming runs produce one.
  uint64_t digest = 14695981039346656037ULL;

  /// Utilization band bounds for the wait split (CalibratorOptions
  /// defaults).
  static constexpr double kLowUtilBelowPct = 30.0;
  static constexpr double kHighUtilAbovePct = 70.0;

  /// Sizes the count vectors for a catalog with `num_rungs` rungs and a run
  /// of `num_intervals` intervals. Must be called before folding; shapes
  /// must match for MergeFrom.
  void Init(int num_rungs, int num_intervals);

  static size_t PctBucket(double v);
  static size_t WaitBucket(double v);

  // -- Fold paths (allocation-free) ---------------------------------------
  void AddHourlyRecord(const HourlyRecord& record);
  /// One container-change event. `gap_intervals` <= 0 means "no previous
  /// event for this tenant" (only the step is counted), matching the exact
  /// path's inter-event bookkeeping.
  void AddChangeEvent(int step, int gap_intervals);
  /// One tenant's end-of-run change total.
  void AddTenantChanges(int num_changes);
  /// Chains a finished per-tenant stream digest onto this aggregate's
  /// digest; call in tenant order.
  void ChainDigest(uint64_t value);

  /// Adds `other` into this aggregate (shapes must match) and chains
  /// other's digest onto this one. Merging per-block aggregates in block
  /// order into a fresh aggregate yields the run's canonical digest.
  void MergeFrom(const FleetAggregate& other);

  // -- Queries ------------------------------------------------------------
  double OneStepFraction() const;
  double AtMostTwoStepFraction() const;
  /// Fraction of change events whose inter-event gap is <= `minutes`
  /// (Figure 2(a)-style CDF point), over events with a recorded gap.
  double InterEventFractionAtOrBelow(double minutes) const;
  /// Fraction of tenants with at least `n` changes over the run.
  double TenantFractionWithChangesAtLeast(int n) const;
  /// Approximate percentile (0..100) of the hourly wait-per-request
  /// distribution for one resource and utilization band, read from the
  /// bucket upper bound. `band` is 0 = all, 1 = low-util, 2 = high-util.
  double WaitPerReqPercentileUpperBound(container::ResourceKind kind,
                                        int band, double pct) const;

  /// Oracle builder: folds a materialized exact-path FleetTelemetry into an
  /// aggregate. Integer counts match a streaming run over the same fleet
  /// exactly; double sums match to rounding; the digest is NOT comparable
  /// (different fold order).
  static FleetAggregate FromTelemetry(const FleetTelemetry& telemetry,
                                      int num_rungs);
};

}  // namespace dbscale::fleet

#endif  // DBSCALE_FLEET_FLEET_AGGREGATE_H_
