// Threshold calibration from service-wide telemetry (Section 4.1).
//
// A DaaS observes thousands of tenants; even though waits correlate only
// weakly with demand per tenant, across the fleet the wait distributions of
// low-demand and high-demand populations separate cleanly (Figure 6). The
// calibrator exploits that separation:
//
//   wait LOW  threshold <- p90 of waits among low-utilization hours
//   wait HIGH threshold <- p75 of waits among high-utilization hours
//   wait-share SIGNIFICANT threshold <- between the p80 of the low group
//                                       and the median of the high group
//
// The paper re-tunes these as hardware and container SKUs evolve; this
// class is that automation.

#ifndef DBSCALE_FLEET_CALIBRATOR_H_
#define DBSCALE_FLEET_CALIBRATOR_H_

#include "src/common/result.h"
#include "src/fleet/fleet_sim.h"
#include "src/scaler/thresholds.h"

namespace dbscale::fleet {

struct CalibratorOptions {
  double low_util_below_pct = 30.0;
  double high_util_above_pct = 70.0;
  /// Percentile of the low-utilization wait distribution that becomes the
  /// LOW threshold.
  double low_group_percentile = 90.0;
  /// Percentile of the high-utilization wait distribution that becomes the
  /// HIGH threshold.
  double high_group_percentile = 75.0;
};

/// \brief Derives SignalThresholds from fleet telemetry.
class ThresholdCalibrator {
 public:
  explicit ThresholdCalibrator(CalibratorOptions options = {});

  /// Starts from `base` (keeping its utilization bounds and correlation
  /// settings) and replaces the wait-magnitude and wait-share thresholds
  /// with calibrated values.
  Result<scaler::SignalThresholds> Calibrate(
      const FleetTelemetry& fleet,
      const scaler::SignalThresholds& base =
          scaler::SignalThresholds::Default()) const;

 private:
  CalibratorOptions options_;
};

}  // namespace dbscale::fleet

#endif  // DBSCALE_FLEET_CALIBRATOR_H_
