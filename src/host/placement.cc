#include "src/host/placement.h"

#include "src/common/check.h"

namespace dbscale::host {

namespace {

class FirstFitPolicy : public PlacementPolicy {
 public:
  const char* name() const override { return "first_fit"; }

  // dbscale-hot
  int ChooseHost(const HostMap& map, const container::ResourceVector& need,
                 int exclude_host) const override {
    for (int id = 0; id < map.num_hosts(); ++id) {
      if (id == exclude_host) continue;
      if (map.FitsOn(id, need)) return id;
    }
    return -1;
  }
};

/// Shared scan for the headroom-scoring policies: CPU headroom left after
/// the placement, minimized (best-fit packs tight) or maximized (worst-fit
/// leaves slack for the next burst). Strict comparisons keep the
/// lowest-index winner on ties.
// dbscale-hot
int ChooseByHeadroom(const HostMap& map, const container::ResourceVector& need,
                     int exclude_host, bool prefer_tightest) {
  int best = -1;
  double best_headroom = 0.0;
  for (int id = 0; id < map.num_hosts(); ++id) {
    if (id == exclude_host) continue;
    if (!map.FitsOn(id, need)) continue;
    const double headroom = map.FreeOn(id).cpu_cores - need.cpu_cores;
    if (best < 0 || (prefer_tightest ? headroom < best_headroom
                                     : headroom > best_headroom)) {
      best = id;
      best_headroom = headroom;
    }
  }
  return best;
}

class BestFitPolicy : public PlacementPolicy {
 public:
  const char* name() const override { return "best_fit"; }
  int ChooseHost(const HostMap& map, const container::ResourceVector& need,
                 int exclude_host) const override {
    return ChooseByHeadroom(map, need, exclude_host, /*prefer_tightest=*/true);
  }
};

class WorstFitPolicy : public PlacementPolicy {
 public:
  const char* name() const override { return "worst_fit"; }
  int ChooseHost(const HostMap& map, const container::ResourceVector& need,
                 int exclude_host) const override {
    return ChooseByHeadroom(map, need, exclude_host,
                            /*prefer_tightest=*/false);
  }
};

}  // namespace

std::unique_ptr<PlacementPolicy> MakePlacementPolicy(PlacementPolicyKind kind) {
  switch (kind) {
    case PlacementPolicyKind::kFirstFit:
      return std::make_unique<FirstFitPolicy>();
    case PlacementPolicyKind::kBestFit:
      return std::make_unique<BestFitPolicy>();
    case PlacementPolicyKind::kWorstFit:
      return std::make_unique<WorstFitPolicy>();
  }
  DBSCALE_CHECK(false);
  return nullptr;
}

}  // namespace dbscale::host
