#include "src/host/host_map.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"
#include "src/common/fnv.h"
#include "src/common/string_util.h"

namespace dbscale::host {

const char* PlacementPolicyKindToString(PlacementPolicyKind kind) {
  switch (kind) {
    case PlacementPolicyKind::kFirstFit:
      return "first_fit";
    case PlacementPolicyKind::kBestFit:
      return "best_fit";
    case PlacementPolicyKind::kWorstFit:
      return "worst_fit";
  }
  return "?";
}

Status HostOptions::Validate() const {
  if (num_hosts < 0) {
    return Status::InvalidArgument("host.num_hosts must be >= 0");
  }
  if (!enabled()) return Status::OK();
  for (const auto kind : container::kAllResources) {
    if (capacity.Get(kind) <= 0.0) {
      return Status::InvalidArgument(
          StrFormat("host.capacity.%s must be > 0 when hosts are enabled",
                    container::ResourceKindToString(kind)));
    }
    if (background.Get(kind) < 0.0) {
      return Status::InvalidArgument(
          StrFormat("host.background.%s must be >= 0",
                    container::ResourceKindToString(kind)));
    }
  }
  if (overcommit_factor < 1.0) {
    return Status::InvalidArgument("host.overcommit_factor must be >= 1");
  }
  if (migration_latency_intervals < 0) {
    return Status::InvalidArgument(
        "host.migration_latency_intervals must be >= 0");
  }
  if (migration_downtime_intervals < 0) {
    return Status::InvalidArgument(
        "host.migration_downtime_intervals must be >= 0");
  }
  if (migration_latency_intervals + migration_downtime_intervals <= 0) {
    return Status::InvalidArgument(
        "a migration must span at least one interval (latency + downtime "
        "must be > 0)");
  }
  if (migration_downtime_wait_factor < 1.0) {
    return Status::InvalidArgument(
        "host.migration_downtime_wait_factor must be >= 1");
  }
  if (interference_start_ratio <= 0.0) {
    return Status::InvalidArgument(
        "host.interference_start_ratio must be > 0");
  }
  if (interference_slope < 0.0) {
    return Status::InvalidArgument("host.interference_slope must be >= 0");
  }
  if (hot_hosts < 0 || hot_hosts > num_hosts) {
    return Status::InvalidArgument(
        "host.hot_hosts must be within [0, num_hosts]");
  }
  for (const auto kind : container::kAllResources) {
    if (hot_extra.Get(kind) < 0.0) {
      return Status::InvalidArgument(
          StrFormat("host.hot_extra.%s must be >= 0",
                    container::ResourceKindToString(kind)));
    }
  }
  return Status::OK();
}

container::ResourceVector UpDelta(const container::ResourceVector& old_bundle,
                                  const container::ResourceVector& new_bundle) {
  container::ResourceVector delta;
  for (const auto kind : container::kAllResources) {
    delta.Set(kind,
              std::max(0.0, new_bundle.Get(kind) - old_bundle.Get(kind)));
  }
  return delta;
}

// Options are validated by the owning simulation / fleet runner before a
// HostMap is ever constructed (Simulation::Run and FleetScaleOptions
// fingerprinting both call HostOptions::Validate()); the constructor only
// re-checks the structural invariant it depends on.
// dbscale-lint: allow(options-validate)
HostMap::HostMap(const HostOptions& options)
    : options_(options),
      limit_(options.capacity.Scaled(options.overcommit_factor)),
      hosts_(static_cast<size_t>(options.num_hosts)) {
  DBSCALE_CHECK(options.num_hosts > 0);
  for (HostState& h : hosts_) h.alloc = options_.background;
  for (int i = 0; i < options_.hot_hosts; ++i) {
    container::ResourceVector& alloc = hosts_[static_cast<size_t>(i)].alloc;
    for (const auto kind : container::kAllResources) {
      alloc.Set(kind, alloc.Get(kind) + options_.hot_extra.Get(kind));
    }
  }
}

Result<std::vector<int>> HostMap::SeedPlace(
    const std::vector<container::ContainerSpec>& containers) {
  // First-fit-decreasing: big tenants first so stragglers slot into the
  // gaps. Ties break on tenant index so the order (and hence the digest)
  // is fully determined by the input.
  std::vector<int> order(containers.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double pa = containers[static_cast<size_t>(a)].price_per_interval;
    const double pb = containers[static_cast<size_t>(b)].price_per_interval;
    if (pa != pb) return pa > pb;
    return a < b;
  });

  std::vector<int> host_of(containers.size(), -1);
  for (const int tenant : order) {
    const container::ResourceVector& bundle =
        containers[static_cast<size_t>(tenant)].resources;
    int placed = -1;
    for (int id = 0; id < num_hosts(); ++id) {
      if (FitsOn(id, bundle)) {
        placed = id;
        break;
      }
    }
    if (placed < 0) {
      return Status::ResourceExhausted(StrFormat(
          "seed placement: tenant %d (%s) fits on no host (%d hosts, "
          "capacity %s x%.2f)",
          tenant, containers[static_cast<size_t>(tenant)].name.c_str(),
          num_hosts(), options_.capacity.ToString().c_str(),
          options_.overcommit_factor));
    }
    Place(placed, bundle);
    host_of[static_cast<size_t>(tenant)] = placed;
  }
  return host_of;
}

// dbscale-hot
bool HostMap::FitsOn(int id, const container::ResourceVector& extra) const {
  const HostState& h = hosts_[static_cast<size_t>(id)];
  for (const auto kind : container::kAllResources) {
    if (h.alloc.Get(kind) + h.reserved.Get(kind) + extra.Get(kind) >
        limit_.Get(kind)) {
      return false;
    }
  }
  return true;
}

container::ResourceVector HostMap::FreeOn(int id) const {
  const HostState& h = hosts_[static_cast<size_t>(id)];
  container::ResourceVector free;
  for (const auto kind : container::kAllResources) {
    free.Set(kind, std::max(0.0, limit_.Get(kind) - h.alloc.Get(kind) -
                                     h.reserved.Get(kind)));
  }
  return free;
}

namespace {

// dbscale-hot
void AddInto(container::ResourceVector& acc,
             const container::ResourceVector& v) {
  acc.cpu_cores += v.cpu_cores;
  acc.memory_mb += v.memory_mb;
  acc.disk_iops += v.disk_iops;
  acc.log_mbps += v.log_mbps;
}

// dbscale-hot
void SubFrom(container::ResourceVector& acc,
             const container::ResourceVector& v) {
  acc.cpu_cores -= v.cpu_cores;
  acc.memory_mb -= v.memory_mb;
  acc.disk_iops -= v.disk_iops;
  acc.log_mbps -= v.log_mbps;
}

}  // namespace

void HostMap::Place(int id, const container::ResourceVector& bundle) {
  HostState& h = hosts_[static_cast<size_t>(id)];
  AddInto(h.alloc, bundle);
  ++h.num_tenants;
}

void HostMap::Remove(int id, const container::ResourceVector& bundle) {
  HostState& h = hosts_[static_cast<size_t>(id)];
  SubFrom(h.alloc, bundle);
  --h.num_tenants;
  DBSCALE_CHECK(h.num_tenants >= 0);
}

void HostMap::ReserveLocal(int id, const container::ResourceVector& up_delta) {
  AddInto(hosts_[static_cast<size_t>(id)].reserved, up_delta);
}

void HostMap::CommitLocal(int id, const container::ResourceVector& up_delta,
                          const container::ResourceVector& old_bundle,
                          const container::ResourceVector& new_bundle) {
  HostState& h = hosts_[static_cast<size_t>(id)];
  SubFrom(h.reserved, up_delta);
  SubFrom(h.alloc, old_bundle);
  AddInto(h.alloc, new_bundle);
}

void HostMap::AbortLocal(int id, const container::ResourceVector& up_delta) {
  SubFrom(hosts_[static_cast<size_t>(id)].reserved, up_delta);
}

void HostMap::BeginMigration(int dest, const container::ResourceVector& target) {
  AddInto(hosts_[static_cast<size_t>(dest)].reserved, target);
  ++counters_.migrations_begun;
}

void HostMap::CompleteMigration(int source, int dest,
                                const container::ResourceVector& old_bundle,
                                const container::ResourceVector& new_bundle) {
  HostState& d = hosts_[static_cast<size_t>(dest)];
  SubFrom(d.reserved, new_bundle);
  AddInto(d.alloc, new_bundle);
  ++d.num_tenants;
  Remove(source, old_bundle);
  ++counters_.migrations_completed;
}

void HostMap::AbortMigration(int dest, const container::ResourceVector& target) {
  SubFrom(hosts_[static_cast<size_t>(dest)].reserved, target);
  ++counters_.migrations_failed;
}

// dbscale-hot
void HostMap::UpdateInterference(
    const std::vector<double>& resident_demand_cpu) {
  DBSCALE_CHECK(resident_demand_cpu.size() == hosts_.size());
  const double capacity_cpu = options_.capacity.cpu_cores;
  const double background_cpu = options_.background.cpu_cores;
  for (size_t i = 0; i < hosts_.size(); ++i) {
    HostState& h = hosts_[i];
    const double hot = static_cast<int>(i) < options_.hot_hosts
                           ? options_.hot_extra.cpu_cores
                           : 0.0;
    h.cpu_pressure =
        (background_cpu + hot + resident_demand_cpu[i]) / capacity_cpu;
    h.throttle =
        1.0 + options_.interference_slope *
                  std::max(0.0, h.cpu_pressure -
                                    options_.interference_start_ratio);
    if (h.cpu_pressure > 1.0) ++counters_.saturated_host_intervals;
  }
}

uint64_t HostMap::Digest() const {
  Fnv64Stream hash;
  for (const HostState& h : hosts_) {
    hash.Dbl(h.alloc.cpu_cores);
    hash.Dbl(h.alloc.memory_mb);
    hash.Dbl(h.alloc.disk_iops);
    hash.Dbl(h.alloc.log_mbps);
    hash.Dbl(h.reserved.cpu_cores);
    hash.Dbl(h.reserved.memory_mb);
    hash.Dbl(h.reserved.disk_iops);
    hash.Dbl(h.reserved.log_mbps);
    hash.I32(h.num_tenants);
    hash.Dbl(h.throttle);
  }
  hash.U64(counters_.migrations_begun);
  hash.U64(counters_.migrations_completed);
  hash.U64(counters_.migrations_failed);
  hash.U64(counters_.downtime_intervals);
  hash.U64(counters_.saturated_host_intervals);
  hash.U64(counters_.placement_holds);
  return hash.value;
}

}  // namespace dbscale::host
