#include "src/host/actuation.h"

#include "src/common/check.h"

namespace dbscale::host {

const char* ActuationKindToString(ActuationKind kind) {
  switch (kind) {
    case ActuationKind::kLocalResize:
      return "local_resize";
    case ActuationKind::kMigration:
      return "migration";
  }
  return "?";
}

const char* ActuationPhaseToString(ActuationPhase phase) {
  switch (phase) {
    case ActuationPhase::kNone:
      return "none";
    case ActuationPhase::kPending:
      return "pending";
    case ActuationPhase::kApplied:
      return "applied";
    case ActuationPhase::kFailed:
      return "failed";
    case ActuationPhase::kRejected:
      return "rejected";
  }
  return "?";
}

ActuationChannel::ActuationChannel(fault::ResizeActuator* actuator,
                                   int migration_latency_intervals,
                                   int migration_downtime_intervals)
    : actuator_(actuator),
      migration_latency_intervals_(migration_latency_intervals),
      migration_downtime_intervals_(migration_downtime_intervals) {
  DBSCALE_CHECK(actuator != nullptr);
}

namespace {

ActuationPhase PhaseOf(fault::ResizeEventKind kind) {
  switch (kind) {
    case fault::ResizeEventKind::kNone:
      return ActuationPhase::kNone;
    case fault::ResizeEventKind::kPending:
      return ActuationPhase::kPending;
    case fault::ResizeEventKind::kApplied:
      return ActuationPhase::kApplied;
    case fault::ResizeEventKind::kFailed:
      return ActuationPhase::kFailed;
    case fault::ResizeEventKind::kRejected:
      return ActuationPhase::kRejected;
  }
  return ActuationPhase::kNone;
}

}  // namespace

// dbscale-hot
ActuationOutcome ActuationChannel::MakeOutcome(
    const fault::ResizeEvent& event) const {
  ActuationOutcome out;
  out.phase = PhaseOf(event.kind);
  out.kind = request_.kind;
  out.target = event.target;
  out.attempt = event.attempt;
  if (request_.kind == ActuationKind::kMigration) {
    out.from_host = source_host_;
    out.to_host = request_.host_hint;
    out.downtime_intervals = downtime_billed_;
  }
  return out;
}

// dbscale-hot
ActuationOutcome ActuationChannel::Begin(const ActuationRequest& request,
                                         int source_host) {
  DBSCALE_CHECK(!actuator_->pending());
  request_ = request;
  source_host_ = source_host;
  downtime_billed_ = 0;
  const int extra =
      request.kind == ActuationKind::kMigration
          ? migration_latency_intervals_ + migration_downtime_intervals_
          : 0;
  return MakeOutcome(actuator_->Begin(request.target, extra));
}

// dbscale-hot
ActuationOutcome ActuationChannel::Tick() {
  const fault::ResizeEvent event = actuator_->Tick();
  if (event.kind != fault::ResizeEventKind::kNone && in_downtime()) {
    // This interval falls inside the migration blackout window: one more
    // downtime interval billed against the tenant.
    ++downtime_billed_;
  }
  return MakeOutcome(event);
}

bool ActuationChannel::in_downtime() const {
  if (!actuator_->pending() ||
      request_.kind != ActuationKind::kMigration ||
      migration_downtime_intervals_ <= 0) {
    return false;
  }
  return actuator_->remaining_intervals() <= migration_downtime_intervals_;
}

ActuationChannel::State ActuationChannel::SaveState() const {
  State s;
  s.kind = static_cast<uint8_t>(request_.kind);
  s.dest_host = request_.host_hint;
  s.source_host = source_host_;
  s.downtime_billed = downtime_billed_;
  return s;
}

void ActuationChannel::RestoreState(const State& state) {
  request_.kind = static_cast<ActuationKind>(state.kind);
  request_.host_hint = state.dest_host;
  source_host_ = state.source_host;
  downtime_billed_ = state.downtime_billed;
}

}  // namespace dbscale::host
