// Pluggable destination choice for migrations.
//
// Seed placement is fixed (first-fit-decreasing, HostMap::SeedPlace); the
// PlacementPolicy only governs where a scale-up that does not fit locally
// moves to. Policies are pure functions of the map's current accounting,
// iterate hosts in index order, and break ties on the lowest index — so a
// given map state always yields the same choice, independent of thread
// count or history.

#ifndef DBSCALE_HOST_PLACEMENT_H_
#define DBSCALE_HOST_PLACEMENT_H_

#include <memory>

#include "src/container/container.h"
#include "src/host/host_map.h"

namespace dbscale::host {

/// \brief Chooses the destination host for a bundle that must move.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual const char* name() const = 0;

  /// Returns the host to migrate onto, or -1 when no host fits `need`.
  /// `exclude_host` (the tenant's current host, where the bundle already
  /// failed to fit) is never chosen; pass -1 to consider every host.
  virtual int ChooseHost(const HostMap& map,
                         const container::ResourceVector& need,
                         int exclude_host) const = 0;
};

std::unique_ptr<PlacementPolicy> MakePlacementPolicy(PlacementPolicyKind kind);

}  // namespace dbscale::host

#endif  // DBSCALE_HOST_PLACEMENT_H_
