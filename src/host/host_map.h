// The host plane: N simulated machines with finite capacity, tenants
// bin-packed onto them, and the accounting that turns "scale up" into
// "migrate" when the bigger container does not fit locally.
//
// Everything here is deterministic bookkeeping — no RNG, no time. Hosts
// are identified by dense index and every iteration walks them in index
// order, so the digest (and any placement choice derived from the map) is
// bit-identical across runs and thread counts. The harness owning the map
// is responsible for mutating it from a serial phase (or in a fixed tenant
// order); the map itself is not thread-safe.
//
// Accounting model: per host, `alloc` is the sum of resident containers'
// resource bundles and `reserved` is capacity promised to in-flight
// actuations (the up-delta of a pending local resize, the full target
// bundle of an incoming migration). FitsOn admits a placement when
// alloc + reserved + extra <= capacity * overcommit_factor in every
// dimension — overcommit is what lets a host saturate and the
// interference model below bite.
//
// Interference: allocation alone cannot oversubscribe (FitsOn forbids it),
// so saturation is driven by *demand pressure* — the harness feeds each
// host the sum of its residents' CPU demand (clamped to their containers)
// from the previous interval, and the map turns pressure beyond
// `interference_start_ratio` into a wait-inflation throttle factor shared
// by every tenant on the host.

#ifndef DBSCALE_HOST_HOST_MAP_H_
#define DBSCALE_HOST_HOST_MAP_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/container/container.h"

namespace dbscale::host {

/// Which heuristic picks the destination host for a migration. Seed
/// placement is always first-fit-decreasing; the policy governs scale-ups
/// that must move.
enum class PlacementPolicyKind : uint8_t {
  kFirstFit = 0,  ///< lowest-index host with room
  kBestFit = 1,   ///< tightest CPU headroom after placement
  kWorstFit = 2,  ///< loosest CPU headroom after placement
};

const char* PlacementPolicyKindToString(PlacementPolicyKind kind);

/// \brief The host plane's configuration. `num_hosts == 0` disables the
/// layer entirely (the pre-host "infinite capacity" world): no map is
/// built, no digest is folded, and runs stay bit-identical to pre-host
/// baselines.
struct HostOptions {
  int num_hosts = 0;
  /// Per-host capacity in the catalog's resource units.
  container::ResourceVector capacity{16.0, 65536.0, 20000.0, 400.0};
  /// FitsOn admits up to capacity * overcommit_factor per dimension; > 1
  /// lets demand pressure exceed capacity and interference kick in.
  double overcommit_factor = 1.0;
  /// Online copy intervals a migration spends before its blackout window.
  int migration_latency_intervals = 1;
  /// Blackout (downtime) intervals at the end of a migration.
  int migration_downtime_intervals = 1;
  /// Wait inflation applied to a tenant's samples during its own
  /// migration blackout.
  double migration_downtime_wait_factor = 8.0;
  /// CPU pressure (demand / capacity) where interference starts.
  double interference_start_ratio = 0.75;
  /// Throttle slope: throttle = 1 + slope * max(0, pressure - start).
  double interference_slope = 4.0;
  PlacementPolicyKind placement = PlacementPolicyKind::kFirstFit;
  /// Non-tenant load pre-placed on every host (OS, agents, system DBs);
  /// counts toward both allocation and demand pressure.
  container::ResourceVector background;
  /// Additional background on hosts [0, hot_hosts): deliberately skewed
  /// machines (legacy workloads, system tenants). The skew is what lets a
  /// scale-up fail to fit locally while an identical-capacity peer has
  /// room — i.e. what makes migrations reachable even for a lone tenant.
  int hot_hosts = 0;
  container::ResourceVector hot_extra;

  bool enabled() const { return num_hosts > 0; }

  Status Validate() const;
};

/// Per-dimension max(0, new - old): the extra capacity a local resize
/// needs on its host.
container::ResourceVector UpDelta(const container::ResourceVector& old_bundle,
                                  const container::ResourceVector& new_bundle);

/// \brief One host's accounting state. Plain data; saved verbatim into
/// fleet checkpoints.
struct HostState {
  /// Sum of resident containers' bundles (plus background).
  container::ResourceVector alloc;
  /// Capacity promised to in-flight actuations.
  container::ResourceVector reserved;
  int32_t num_tenants = 0;
  /// Previous interval's CPU demand pressure (demand / capacity).
  double cpu_pressure = 0.0;
  /// Wait-inflation factor derived from cpu_pressure.
  double throttle = 1.0;
};

/// \brief The fleet-to-host assignment plus per-host accounting.
class HostMap {
 public:
  explicit HostMap(const HostOptions& options);

  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  const HostOptions& options() const { return options_; }
  const std::vector<HostState>& hosts() const { return hosts_; }
  const HostState& host(int id) const { return hosts_[static_cast<size_t>(id)]; }

  /// First-fit-decreasing seed placement: tenants sorted by container
  /// price descending (ties by index ascending), each placed on the
  /// lowest-index host with room. Returns host-of-tenant, or
  /// ResourceExhausted naming the first tenant that fits nowhere.
  Result<std::vector<int>> SeedPlace(
      const std::vector<container::ContainerSpec>& containers);

  /// True when `extra` fits on `id` next to current alloc + reserved under
  /// capacity * overcommit_factor.
  bool FitsOn(int id, const container::ResourceVector& extra) const;
  /// Per-resource headroom left on `id` (overcommitted capacity - alloc -
  /// reserved), clamped at 0.
  container::ResourceVector FreeOn(int id) const;

  // -- Residency ----------------------------------------------------------
  void Place(int id, const container::ResourceVector& bundle);
  void Remove(int id, const container::ResourceVector& bundle);

  // -- Local resize --------------------------------------------------------
  // While a local resize is in flight, its up-delta (per-dimension
  // max(0, new - old)) is reserved so concurrent placements cannot claim
  // the capacity it needs. Commit releases the reservation and swaps the
  // resident bundle old -> new (shrinking dimensions included).
  void ReserveLocal(int id, const container::ResourceVector& up_delta);
  void CommitLocal(int id, const container::ResourceVector& up_delta,
                   const container::ResourceVector& old_bundle,
                   const container::ResourceVector& new_bundle);
  void AbortLocal(int id, const container::ResourceVector& up_delta);

  // -- Migration (reserve the full target bundle on the destination) ------
  void BeginMigration(int dest, const container::ResourceVector& target);
  /// Cutover: the tenant leaves `source` with its old bundle and lands on
  /// `dest` with the new one.
  void CompleteMigration(int source, int dest,
                         const container::ResourceVector& old_bundle,
                         const container::ResourceVector& new_bundle);
  /// Failed migration: the destination reservation is released; the source
  /// accounting was never touched.
  void AbortMigration(int dest, const container::ResourceVector& target);

  // -- Interference -------------------------------------------------------
  /// Folds the previous interval's per-host resident CPU demand (already
  /// clamped per tenant to its container) into pressure + throttle, host
  /// by host in index order. Bumps the saturated-host-interval counter for
  /// every host whose pressure exceeds 1.0.
  void UpdateInterference(const std::vector<double>& resident_demand_cpu);
  double throttle(int id) const { return hosts_[static_cast<size_t>(id)].throttle; }
  double cpu_pressure(int id) const {
    return hosts_[static_cast<size_t>(id)].cpu_pressure;
  }
  /// True once `id`'s pressure is at or beyond the interference knee.
  bool saturated(int id) const {
    return hosts_[static_cast<size_t>(id)].cpu_pressure >=
           options_.interference_start_ratio;
  }

  // -- Counters -----------------------------------------------------------
  struct Counters {
    uint64_t migrations_begun = 0;
    uint64_t migrations_completed = 0;
    uint64_t migrations_failed = 0;
    uint64_t downtime_intervals = 0;
    uint64_t saturated_host_intervals = 0;
    uint64_t placement_holds = 0;
  };
  const Counters& counters() const { return counters_; }
  /// One migration blackout interval billed against a tenant.
  void AddDowntimeInterval() { ++counters_.downtime_intervals; }
  /// A scale-up held because no host (local or remote) had capacity.
  void AddPlacementHold() { ++counters_.placement_holds; }

  /// FNV-1a over every host's accounting in index order, then the
  /// counters: the host plane's contribution to run digests.
  uint64_t Digest() const;

  // -- Checkpoint support -------------------------------------------------
  void RestoreHost(int id, const HostState& state) {
    hosts_[static_cast<size_t>(id)] = state;
  }
  void RestoreCounters(const Counters& counters) { counters_ = counters; }

 private:
  HostOptions options_;
  container::ResourceVector limit_;  // capacity * overcommit_factor
  std::vector<HostState> hosts_;
  Counters counters_;
};

}  // namespace dbscale::host

#endif  // DBSCALE_HOST_HOST_MAP_H_
