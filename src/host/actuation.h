// The placement-aware actuation API: one request/outcome vocabulary for
// every container change, spoken by the scaler (feedback before each
// Decide), the fault actuator (fate + latency draws), and the host layer
// (fit checks, migrations, downtime billing).
//
// PR 5 introduced the two-phase engine resize (BeginResize/CompleteResize/
// AbortResize) driven by fault::ResizeActuator — one channel, local
// resizes only. This layer generalizes the channel: an ActuationRequest
// names the *kind* of change (a local resize on the tenant's current host,
// or a migration to another host when the scale-up does not fit locally),
// and the ActuationChannel ages it through the same actuator, adding the
// migration's copy latency and cutover downtime on top of whatever the
// fault plan draws. The outcome struct doubles as the scaler feedback
// (`PolicyInput.actuation`), so a policy sees pending migrations, billed
// downtime, and placement rejections through one surface.
//
// Null-plan contract: with a null fault plan and kLocalResize requests the
// channel resolves every Begin immediately (exactly the pre-host
// synchronous behavior) and draws nothing from any RNG stream.

#ifndef DBSCALE_HOST_ACTUATION_H_
#define DBSCALE_HOST_ACTUATION_H_

#include <cstdint>

#include "src/container/container.h"
#include "src/fault/actuator.h"

namespace dbscale::host {

enum class ActuationKind : uint8_t {
  kLocalResize = 0,  ///< container change in place on the current host
  kMigration = 1,    ///< move to another host (slow: latency + downtime)
};

const char* ActuationKindToString(ActuationKind kind);

/// Lifecycle phase reported by the channel (and fed back to the scaler).
enum class ActuationPhase : uint8_t {
  kNone,     ///< nothing in flight / nothing resolved
  kPending,  ///< in flight (actuation latency / migration copy+cutover)
  kApplied,  ///< applied at the start of this interval
  kFailed,   ///< failed transiently; retrying may succeed
  kRejected  ///< rejected permanently (or no host has capacity)
};

const char* ActuationPhaseToString(ActuationPhase phase);

/// One requested container change, fully placed: what to actuate, how, and
/// (for migrations) where.
struct ActuationRequest {
  ActuationKind kind = ActuationKind::kLocalResize;
  container::ContainerSpec target;
  /// Catalog rung of `target` (redundant with target.base_rung; kept so
  /// harnesses that track rungs need not carry specs).
  int target_rung = -1;
  /// Destination host for migrations (chosen by the PlacementPolicy before
  /// Begin); -1 for local resizes.
  int host_hint = -1;
};

/// What happened to the most recent request. Doubles as the scaler's
/// per-decision feedback (`PolicyInput.actuation`): the harness reports
/// the latest transition here before each Decide.
struct ActuationOutcome {
  ActuationPhase phase = ActuationPhase::kNone;
  ActuationKind kind = ActuationKind::kLocalResize;
  /// Target of the attempt the outcome refers to.
  container::ContainerSpec target;
  /// 1-based attempt number toward that target.
  int attempt = 0;
  /// Migration endpoints (-1 for local resizes).
  int from_host = -1;
  int to_host = -1;
  /// Blackout intervals billed against the tenant by the in-flight (or
  /// just-resolved) migration so far.
  int downtime_intervals = 0;
};

/// The unified resize/migration feedback surface (satellite of the
/// placement API redesign): PolicyInput.resize and migration feedback are
/// one struct.
using ActuationFeedback = ActuationOutcome;

/// What the scaler may know about its tenant's placement when a host plane
/// is attached (absent = the pre-host "infinite capacity" world).
struct PlacementView {
  bool present = false;
  int host_id = -1;
  /// Per-resource headroom left on the tenant's host (capacity *
  /// overcommit - allocated - reserved).
  container::ResourceVector free;
  /// Deterministic wait-inflation factor currently applied to the host's
  /// tenants (1.0 = no interference).
  double throttle_factor = 1.0;
  /// CPU pressure at or beyond the interference knee.
  bool saturated = false;
};

/// \brief One tenant's actuation channel: wraps the fault actuator (fate +
/// latency draws) and adds migration timing. At most one request is in
/// flight; migrations spend `migration_latency_intervals` of online copy
/// followed by `migration_downtime_intervals` of blackout before applying.
class ActuationChannel {
 public:
  /// `actuator` is borrowed and must outlive the channel.
  ActuationChannel(fault::ResizeActuator* actuator,
                   int migration_latency_intervals,
                   int migration_downtime_intervals);

  /// Issues a request. Must not be called while pending(). Local resizes
  /// behave exactly like ResizeActuator::Begin; migrations add
  /// latency+downtime intervals on top of the fault plan's draw, so even a
  /// null plan leaves a migration pending. `source_host` is echoed in the
  /// outcome's from_host for migrations.
  ActuationOutcome Begin(const ActuationRequest& request,
                         int source_host = -1);

  /// Advances one billing interval; resolves due requests.
  ActuationOutcome Tick();

  bool pending() const { return actuator_->pending(); }
  const ActuationRequest& request() const { return request_; }
  /// True while the in-flight migration is inside its blackout window (the
  /// last `migration_downtime_intervals` pending intervals). The harness
  /// bills one downtime interval per in-downtime tick.
  bool in_downtime() const;
  /// Downtime intervals billed so far for the in-flight request.
  int downtime_billed() const { return downtime_billed_; }

  /// Resumable position beyond the wrapped actuator's own State.
  struct State {
    uint8_t kind = 0;
    int32_t dest_host = -1;
    int32_t source_host = -1;
    int32_t downtime_billed = 0;
  };
  State SaveState() const;
  void RestoreState(const State& state);

 private:
  ActuationOutcome MakeOutcome(const fault::ResizeEvent& event) const;

  fault::ResizeActuator* actuator_;
  int migration_latency_intervals_;
  int migration_downtime_intervals_;
  ActuationRequest request_;
  int source_host_ = -1;
  int downtime_billed_ = 0;
};

}  // namespace dbscale::host

#endif  // DBSCALE_HOST_ACTUATION_H_
