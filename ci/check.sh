#!/usr/bin/env bash
# Full correctness gate, five stages:
#   1. normal build + complete test suite (includes dbscale_lint ctest leg)
#   2. ThreadSanitizer build, concurrency-sensitive tests
#   3. UndefinedBehaviorSanitizer build, complete test suite
#   4. clang-tidy over src/ (skipped with a notice when not installed)
#   5. custom invariant lint (tools/lint/dbscale_lint.py + its self-test)
# Any finding in any stage exits non-zero.
#
# Usage: ci/check.sh [build-dir-prefix]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build}"
JOBS="$(nproc)"

echo "=== [1/5] normal build + full test suite ==="
cmake -B "${PREFIX}" -S . >/dev/null
cmake --build "${PREFIX}" -j "${JOBS}"
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo
echo "=== [2/5] ThreadSanitizer build (concurrency tests) ==="
# Benchmarks/examples are skipped under TSan: they triple the build for no
# extra race coverage beyond what the targeted tests exercise.
cmake -B "${PREFIX}-tsan" -S . \
  -DSANITIZE=thread \
  -DDBSCALE_BUILD_BENCHMARKS=OFF \
  -DDBSCALE_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${PREFIX}-tsan" -j "${JOBS}"
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
  -R 'ThreadPool|Fleet|Comparison|Experiment'

echo
echo "=== [3/5] UndefinedBehaviorSanitizer build (full test suite) ==="
# -fno-sanitize-recover (set by CMake for SANITIZE=undefined) turns every
# UB diagnostic into a test failure, so a green run means zero reports.
cmake -B "${PREFIX}-ubsan" -S . \
  -DSANITIZE=undefined \
  -DDBSCALE_BUILD_BENCHMARKS=OFF \
  -DDBSCALE_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${PREFIX}-ubsan" -j "${JOBS}"
ctest --test-dir "${PREFIX}-ubsan" --output-on-failure -j "${JOBS}"

echo
echo "=== [4/5] clang-tidy (checks from .clang-tidy) ==="
TIDY=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
            clang-tidy-15 clang-tidy-14; do
  if command -v "${cand}" >/dev/null 2>&1; then TIDY="${cand}"; break; fi
done
if [[ -n "${TIDY}" ]]; then
  # compile_commands.json is exported by the stage-1 configure.
  mapfile -t TIDY_SRCS < <(find src -name '*.cc' | sort)
  "${TIDY}" -p "${PREFIX}" --warnings-as-errors='*' --quiet "${TIDY_SRCS[@]}"
else
  echo "clang-tidy not on PATH: stage skipped (install clang-tidy to run it)"
fi

echo
echo "=== [5/5] custom invariant lint ==="
ci/lint.sh

echo
echo "All checks passed."
