#!/usr/bin/env bash
# Full correctness gate, twelve stages:
#   1. normal build + complete test suite (includes dbscale_lint ctest leg)
#   2. ThreadSanitizer build, concurrency-sensitive tests (incl. the fault
#      retry path exercised by the Fleet/Fault suites)
#   3. UndefinedBehaviorSanitizer build, complete test suite
#   4. clang-tidy over src/ (skipped with a notice when not installed)
#   5. custom invariant lint (tools/lint/dbscale_lint.py + its self-test)
#   6. quick-mode perf-pipeline smoke: hot paths must stay allocation-free
#      and the incremental signal engine bit-identical to the batch oracle
#   7. observability smoke: run the decision-trace example and validate
#      every exporter's output against the stable schemas
#   8. fault-matrix smoke: null and faulty closed loops are run-twice
#      bit-identical; a null plan never fails a resize; the acceptance
#      fault profile (10% failures, 1-2 interval latency) converges with a
#      visible retry trail in the audit log
#   9. fleet-scale smoke: 10^4-tenant streaming run is run-twice digest
#      identical, a checkpointed stop+resume matches the uninterrupted
#      digest, a corrupted checkpoint is rejected, and throughput stays
#      above a conservative tenants/sec floor
#  10. ingest smoke: the scaler-as-a-service daemon example is run-twice
#      digest identical (and identical to the direct-feed serial
#      reference), rejects nothing at nominal rate, and counts a nonzero
#      rejection total when the ring is flooded
#  11. host-placement smoke: a scale-up on a hot host becomes a billed
#      migration (downtime == D per completed migration), host-mode runs
#      are run-twice bit-identical, and a null host plan reproduces the
#      pre-host fleet digest exactly
#  12. diagonal smoke: the per-resource policy is run-twice digest
#      identical on both the fixed-rung and flexible catalogs, and on
#      skewed demand the flexible grid is strictly cheaper than Auto at
#      equal-or-better latency-goal attainment
# Any finding in any stage exits non-zero.
#
# Usage: ci/check.sh [build-dir-prefix]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build}"
JOBS="$(nproc)"

echo "=== [1/12] normal build + full test suite ==="
cmake -B "${PREFIX}" -S . >/dev/null
cmake --build "${PREFIX}" -j "${JOBS}"
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo
echo "=== [2/12] ThreadSanitizer build (concurrency tests) ==="
# Benchmarks/examples are skipped under TSan: they triple the build for no
# extra race coverage beyond what the targeted tests exercise.
cmake -B "${PREFIX}-tsan" -S . \
  -DSANITIZE=thread \
  -DDBSCALE_BUILD_BENCHMARKS=OFF \
  -DDBSCALE_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${PREFIX}-tsan" -j "${JOBS}"
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
  -R 'ThreadPool|Fault|Fleet|Comparison|Experiment|Ingest'

echo
echo "=== [3/12] UndefinedBehaviorSanitizer build (full test suite) ==="
# -fno-sanitize-recover (set by CMake for SANITIZE=undefined) turns every
# UB diagnostic into a test failure, so a green run means zero reports.
cmake -B "${PREFIX}-ubsan" -S . \
  -DSANITIZE=undefined \
  -DDBSCALE_BUILD_BENCHMARKS=OFF \
  -DDBSCALE_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${PREFIX}-ubsan" -j "${JOBS}"
ctest --test-dir "${PREFIX}-ubsan" --output-on-failure -j "${JOBS}"

echo
echo "=== [4/12] clang-tidy (checks from .clang-tidy) ==="
TIDY=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
            clang-tidy-15 clang-tidy-14; do
  if command -v "${cand}" >/dev/null 2>&1; then TIDY="${cand}"; break; fi
done
if [[ -n "${TIDY}" ]]; then
  # compile_commands.json is exported by the stage-1 configure.
  mapfile -t TIDY_SRCS < <(find src -name '*.cc' | sort)
  "${TIDY}" -p "${PREFIX}" --warnings-as-errors='*' --quiet "${TIDY_SRCS[@]}"
else
  echo "clang-tidy not on PATH: stage skipped (install clang-tidy to run it)"
fi

echo
echo "=== [5/12] custom invariant lint ==="
ci/lint.sh

echo
echo "=== [6/12] perf-pipeline smoke (quick mode) ==="
# Small workloads, large signal: any steady-state allocation on a hot path
# or any bit-level divergence between the incremental signal engine and the
# batch oracle fails the gate, regardless of throughput numbers.
SMOKE_JSON="${PREFIX}/bench_smoke.json"
"${PREFIX}/bench/bench_perf_pipeline" --quick --out="${SMOKE_JSON}" >/dev/null
python3 - "${SMOKE_JSON}" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

failures = []

compute = report["telemetry_compute"]
if compute["with_scratch"]["allocs_per_call"] > 0:
    failures.append("TelemetryManager::Compute (scratch path) allocated "
                    f"{compute['with_scratch']['allocs_per_call']}/call")

for case in report["incremental_vs_batch"]:
    window = case["window"]
    if case["incremental"]["allocs_per_call"] > 0:
        failures.append(f"incremental Compute at W={window} allocated "
                        f"{case['incremental']['allocs_per_call']}/call")
    if not case["digests_match"]:
        failures.append(f"incremental vs batch digests diverge at W={window}")

digests = {run["digest"] for run in report["fleet"]["runs"]}
if len(digests) != 1:
    failures.append(f"fleet digests diverge across thread counts: "
                    f"{sorted(digests)}")
if not report["fleet"]["deterministic_across_threads"]:
    failures.append("fleet reports non-deterministic across thread counts")

obs = report["observability"]
if obs["compute"]["observed_allocs_per_call"] > 0:
    failures.append("observed Compute allocated "
                    f"{obs['compute']['observed_allocs_per_call']}/call")
if not obs["fleet"]["digest_matches"]:
    failures.append("observability changed the fleet digest")

if failures:
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    sys.exit(1)
print(f"bench smoke ok: {len(report['incremental_vs_batch'])} sliding cases "
      "bit-identical, hot paths allocation-free")
print("observability overhead (quick, noisy): "
      f"compute {obs['compute']['overhead_pct']:+.2f}%, "
      f"fleet {obs['fleet']['overhead_pct']:+.2f}% (<2% full-bench target)")
PY

echo
echo "=== [7/12] observability smoke (decision trace + exporter schemas) ==="
# The quickstart example runs an instrumented closed loop and dumps all
# three exports; the schema checker then validates every artifact. Catches
# exporter format regressions that unit goldens (single metrics) miss.
OBS_DIR="${PREFIX}/obs_smoke"
mkdir -p "${OBS_DIR}"
"${PREFIX}/examples/decision_trace" "${OBS_DIR}" >/dev/null
python3 tools/obs/check_obs_output.py \
  "${OBS_DIR}/decision_trace.spans.jsonl" \
  "${OBS_DIR}/decision_trace.metrics.prom" \
  "${OBS_DIR}/decision_trace.metrics.csv"

echo
echo "=== [8/12] fault-matrix smoke (determinism + resilience) ==="
# The faulty_resize example runs the closed loop twice with a null plan and
# twice with the acceptance fault profile, then dumps digests, counters,
# and an audit summary. The checker enforces the resilience contract.
FAULT_JSON="${PREFIX}/fault_smoke.json"
"${PREFIX}/examples/faulty_resize" --json="${FAULT_JSON}" >/dev/null
python3 - "${FAULT_JSON}" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

failures = []
null_run = report["null"]
faulty = report["faulty"]
intervals = report["intervals"]

# Determinism: both planes are run-twice bit-identical.
if null_run["digest"] != null_run["digest_repeat"]:
    failures.append("null-plan run is not deterministic")
if faulty["digest"] != faulty["digest_repeat"]:
    failures.append("faulty run is not deterministic")

# A null plan behaves like the pre-fault baseline: every request applies
# immediately and nothing fails or degrades.
if null_run["resize_failures"] != 0 or null_run["degraded_windows"] != 0:
    failures.append("null plan injected faults")
if null_run["resize_attempts"] != null_run["changes"]:
    failures.append("null plan: requests != applied changes")

# The acceptance profile actually bites, and the loop still converges:
# scaling happens, and there is at most 1 direction reversal per 10
# intervals (the no-oscillation bound).
if faulty["resize_failures"] == 0:
    failures.append("fault profile produced no resize failures")
if faulty["changes"] == 0:
    failures.append("faulty loop wedged: no container changes")
if faulty["resize_attempts"] < faulty["changes"]:
    failures.append("faulty run: fewer requests than applied changes")
if 10 * faulty["reversals"] > intervals:
    failures.append(
        f"faulty loop oscillates: {faulty['reversals']} reversals "
        f"over {intervals} intervals")

# Every failure left a retry trail in the audit log.
audit = faulty["audit"]
if audit["failed"] + audit["abandoned"] == 0:
    failures.append("no failed/abandoned records in the audit log")
if audit["max_attempt"] < 2:
    failures.append("no retry (attempt >= 2) recorded in the audit log")

if failures:
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    sys.exit(1)
print(f"fault smoke ok: null and faulty digests stable, "
      f"{faulty['resize_failures']} failures retried "
      f"(deepest attempt {audit['max_attempt']}), "
      f"{faulty['reversals']} reversals over {intervals} intervals")
PY

echo
echo "=== [9/12] fleet-scale smoke (SoA runner determinism + checkpoints) ==="
# The fleet_scale example runs a 10^4-tenant day twice, round-trips a
# checkpoint at a different thread count, and corrupts the checkpoint.
FLEET_JSON="${PREFIX}/fleet_scale_smoke.json"
"${PREFIX}/examples/fleet_scale" --json="${FLEET_JSON}" >/dev/null
python3 - "${FLEET_JSON}" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

failures = []
if report["digest_a"] != report["digest_b"]:
    failures.append("fleet-scale run is not run-twice deterministic")
if report["digest_resumed"] != report["digest_a"]:
    failures.append("checkpoint resume diverged from the uninterrupted run")
if not report["corrupt_rejected"]:
    failures.append("corrupted checkpoint was not rejected")
# Conservative floor: the single-core container does ~5k tenants/sec on
# this workload; 300/sec catches order-of-magnitude regressions without
# flaking on slow CI machines.
if report["tenants_per_sec"] < 300:
    failures.append(
        f"fleet-scale throughput collapsed: {report['tenants_per_sec']}/s")
if report["hourly_records"] != 10000 * 288 // 12:
    failures.append("unexpected hourly record count")

if failures:
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    sys.exit(1)
print(f"fleet-scale smoke ok: digest {report['digest_a']} stable across "
      f"rerun and resume, corruption rejected, "
      f"{report['tenants_per_sec']:.0f} tenants/s")
PY

echo
echo "=== [10/12] ingest smoke (scaler-as-a-service determinism + backpressure) ==="
# The ingest_daemon example runs the ring -> drain -> batched-decision
# pipeline twice plus a direct-feed serial reference, then floods a tiny
# ring. The checker enforces the service equivalence contract and the
# reject-with-counter backpressure policy.
INGEST_JSON="${PREFIX}/ingest_smoke.json"
"${PREFIX}/examples/ingest_daemon" --json="${INGEST_JSON}" >/dev/null
python3 - "${INGEST_JSON}" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

failures = []

# Bit-identity: run-twice, and service path == direct-feed reference.
if report["digest_a"] != report["digest_b"]:
    failures.append("ingest service run is not run-twice deterministic")
if report["digest_a"] != report["digest_direct"]:
    failures.append("ring+batch digest diverges from the direct-feed "
                    "serial reference")
if not report["digests_match"]:
    failures.append("example reports digest mismatch")

# Nominal rate: the drain cadence keeps up, nothing is rejected, and every
# sample routes to a store.
if report["nominal_rejected"] != 0:
    failures.append(f"nominal run rejected {report['nominal_rejected']} "
                    "samples (ring should never fill)")
if report["nominal_decisions"] == 0:
    failures.append("nominal run produced no decisions")
if report["nominal_routed"] == 0:
    failures.append("nominal run routed no samples")

# Overload: backpressure must be loud (counted), never silent, and the
# published/rejected split must account for every attempted push.
if report["overload_rejected"] == 0:
    failures.append("flooded ring rejected nothing")
if (report["overload_published"] + report["overload_rejected"]
        != report["overload_attempted"]):
    failures.append("overload accounting does not add up")

if failures:
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    sys.exit(1)
print(f"ingest smoke ok: digest {report['digest_a']} stable across rerun "
      f"and direct feed, {report['nominal_decisions']} decisions, "
      f"0 rejected nominal, {report['overload_rejected']} rejected "
      "under overload")
PY

echo
echo "=== [11/12] host-placement smoke (migrations + null-plan identity) ==="
# The host_placement example runs a single tenant on a hot host (its
# scale-up must become a migration), the fleet flash-crowd scenario twice,
# and a host-free fleet that must still hit the pre-host digest pin.
HOST_JSON="${PREFIX}/host_smoke.json"
"${PREFIX}/examples/host_placement" --json="${HOST_JSON}" >/dev/null
python3 - "${HOST_JSON}" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

failures = []
sim = report["sim"]
flt = report["fleet"]

# Determinism: host-mode runs are run-twice bit-identical, sim and fleet.
if sim["digest"] != sim["digest_repeat"]:
    failures.append("host-mode sim run is not deterministic")
if flt["digest"] != flt["digest_repeat"]:
    failures.append("host-mode fleet run is not deterministic")
if flt["host_digest"] != flt["host_digest_repeat"]:
    failures.append("host digest is not run-twice stable")

# The scenario's point: at least one scale-up became a migration, and
# downtime billed exactly D intervals per completed migration.
if sim["migrations_begun"] == 0:
    failures.append("hot-host sim produced no migration")
if sim["downtime_intervals"] != (sim["migrations_completed"]
                                 * sim["downtime_per_migration"]):
    failures.append("sim downtime billing is not exact")
if flt["migrations_begun"] == 0:
    failures.append("flash crowd produced no migrations")
if not flt["downtime_exact"]:
    failures.append("fleet downtime billing is not exact")

# Noisy neighbors are visible: the hot host throttled the tenant.
if sim["max_throttle"] <= 1.0:
    failures.append("hot host produced no interference throttle")

# A null host plan is bit-free: the pre-host fleet digest reproduces.
if not report["null_plan"]["matches_baseline"]:
    failures.append(
        f"null host plan drifted from the pre-host digest: "
        f"{report['null_plan']['digest']} != "
        f"{report['null_plan']['baseline']}")

if failures:
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    sys.exit(1)
print(f"host smoke ok: sim migration billed exactly, fleet "
      f"{flt['migrations_completed']} migrations / "
      f"{flt['downtime_intervals']} downtime intervals, digests stable, "
      f"null plan matches the pre-host pin")
PY

echo
echo "=== [12/12] diagonal smoke (catalog equivalence + per-dimension savings) ==="
# The diagonal_scaling example runs the per-resource policy twice against
# the fixed-rung ladder and twice against the flexible per-dimension
# catalog. The checker enforces determinism and the headline claim: on
# skewed demand the flexible grid is cheaper than Auto without giving up
# latency-goal attainment.
DIAG_JSON="${PREFIX}/diag_smoke.json"
"${PREFIX}/examples/diagonal_scaling" --json="${DIAG_JSON}" >/dev/null
python3 - "${DIAG_JSON}" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

failures = []
for key in ("auto_fixed", "diagonal_fixed", "diagonal_flexible"):
    run = report[key]
    if run["digest"] != run["digest_repeat"]:
        failures.append(f"{key} run is not run-twice deterministic")

flexible = report["diagonal_flexible"]
auto_fixed = report["auto_fixed"]
if not report["flexible_cheaper_than_auto"]:
    failures.append("flexible-catalog diagonal run is not cheaper than Auto")
if flexible["cost"] >= auto_fixed["cost"]:
    failures.append(
        f"diagonal cost {flexible['cost']} not below Auto {auto_fixed['cost']}")
if flexible["attainment"] < auto_fixed["attainment"]:
    failures.append(
        f"diagonal attainment {flexible['attainment']} fell below "
        f"Auto {auto_fixed['attainment']}")

if failures:
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    sys.exit(1)
print(f"diagonal smoke ok: digests stable on both catalogs, flexible grid "
      f"{100.0 * (1.0 - flexible['cost'] / auto_fixed['cost']):.0f}% cheaper "
      f"than Auto at {100.0 * flexible['attainment']:.1f}% attainment "
      f"(Auto {100.0 * auto_fixed['attainment']:.1f}%)")
PY

echo
echo "All checks passed."
