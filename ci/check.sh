#!/usr/bin/env bash
# Full check: normal build + complete test suite, then a ThreadSanitizer
# build running the concurrency-sensitive tests (thread pool, parallel
# fleet fan-out, experiment comparison).
#
# Usage: ci/check.sh [build-dir-prefix]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build}"
JOBS="$(nproc)"

echo "=== normal build + full test suite ==="
cmake -B "${PREFIX}" -S . >/dev/null
cmake --build "${PREFIX}" -j "${JOBS}"
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo
echo "=== ThreadSanitizer build (concurrency tests) ==="
# Benchmarks/examples are skipped under TSan: they triple the build for no
# extra race coverage beyond what the targeted tests exercise.
cmake -B "${PREFIX}-tsan" -S . \
  -DSANITIZE=thread \
  -DDBSCALE_BUILD_BENCHMARKS=OFF \
  -DDBSCALE_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${PREFIX}-tsan" -j "${JOBS}"
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
  -R 'ThreadPool|Fleet|Comparison|Experiment'

echo
echo "All checks passed."
