#!/usr/bin/env bash
# Custom invariant lint: runs tools/lint/dbscale_lint.py over src/ and
# tests/, plus the linter's own fixture self-test. Exits non-zero on any
# finding or self-test failure.
#
# Usage: ci/lint.sh

set -euo pipefail
cd "$(dirname "$0")/.."

PY="${PYTHON:-python3}"
if ! command -v "${PY}" >/dev/null 2>&1; then
  echo "ci/lint.sh: ${PY} not found; cannot run dbscale_lint" >&2
  exit 1
fi

echo "--- dbscale_lint self-test (fixtures) ---"
"${PY}" tools/lint/lint_test.py

echo "--- dbscale_lint over src/ and tests/ ---"
"${PY}" tools/lint/dbscale_lint.py
