#!/usr/bin/env bash
# Custom invariant lint: runs the linter's own self-test (tokenizer
# goldens, fixture trees, and the parity gate against the frozen regex
# engine), then the token-stream linter over src/ and tests/. The full
# run carries a 5-second wall budget — the linter is meant to be cheap
# enough to run on every commit, and a blowup is a regression.
#
# Usage: ci/lint.sh [--diff]
#   --diff  lint only files changed vs the merge-base with main
#           (plus untracked files) instead of the full tree; the
#           self-test and wall budget still apply.

set -euo pipefail
cd "$(dirname "$0")/.."

PY="${PYTHON:-python3}"
if ! command -v "${PY}" >/dev/null 2>&1; then
  echo "ci/lint.sh: ${PY} not found; cannot run dbscale_lint" >&2
  exit 1
fi

LINT_ARGS=()
MODE="src/ and tests/"
if [[ "${1:-}" == "--diff" ]]; then
  LINT_ARGS+=(--diff)
  MODE="changed files (vs merge-base with main)"
fi

echo "--- dbscale_lint self-test (tokenizer, fixtures, parity) ---"
"${PY}" tools/lint/lint_test.py

echo "--- dbscale_lint over ${MODE} ---"
BUDGET_S=5
start_ns=$(date +%s%N)
"${PY}" tools/lint/dbscale_lint.py "${LINT_ARGS[@]+"${LINT_ARGS[@]}"}"
elapsed_ms=$(( ($(date +%s%N) - start_ns) / 1000000 ))
echo "dbscale_lint wall time: ${elapsed_ms} ms (budget ${BUDGET_S}000 ms)"
if (( elapsed_ms > BUDGET_S * 1000 )); then
  echo "ci/lint.sh: lint run exceeded the ${BUDGET_S}s wall budget" >&2
  exit 1
fi
